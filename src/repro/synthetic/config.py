"""Configuration of the synthetic WeChat-like network generator.

The generator substitutes for the proprietary WeChat data.  Its defaults are
calibrated to the statistics the paper reports in Section II:

* relationship-type mix of Table I (family 28 %, colleague 41 %, schoolmate
  15 %, others 16 % of surveyed edges),
* around 60 % of friend pairs with *no* interaction over the observation
  window (Figure 4),
* family circles smaller than colleague circles (Figure 13 discussion),
* Moments interaction propensities per type of Figure 3 (everyone likes
  pictures most; colleagues/schoolmates like articles more than family;
  schoolmates like/comment on games most; colleagues rarely discuss games),
* chat-group membership CDF of Figure 2 (family pairs share the fewest
  common groups, colleagues the most),
* only a small fraction of group names are type-indicative, so a rule-based
  name classifier has high precision but very low recall (Table II).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import DatasetError
from repro.types import InteractionDim, RelationType


@dataclass
class CircleConfig:
    """Size and density parameters of one kind of social circle."""

    min_size: int
    max_size: int
    intra_edge_prob: float
    membership_prob: float
    """Probability that a given user is assigned to a circle of this kind."""

    def validate(self) -> None:
        if self.min_size < 2 or self.max_size < self.min_size:
            raise DatasetError("invalid circle size range")
        if not 0.0 < self.intra_edge_prob <= 1.0:
            raise DatasetError("intra_edge_prob must be in (0, 1]")
        if not 0.0 <= self.membership_prob <= 1.0:
            raise DatasetError("membership_prob must be in [0, 1]")


@dataclass
class InteractionProfile:
    """Interaction propensities of one relationship type.

    ``silent_prob`` is the probability that a friend pair has no interaction
    at all; otherwise each dimension's count is Poisson with the given rate.
    """

    silent_prob: float
    rates: dict[InteractionDim, float]

    def validate(self) -> None:
        if not 0.0 <= self.silent_prob < 1.0:
            raise DatasetError("silent_prob must be in [0, 1)")
        for rate in self.rates.values():
            if rate < 0:
                raise DatasetError("interaction rates must be non-negative")


@dataclass
class GroupConfig:
    """Chat-group generation parameters per relationship type."""

    groups_per_circle: float
    """Expected number of chat groups spawned by one circle."""
    member_participation: float
    """Probability that a circle member joins a given circle group."""
    indicative_name_prob: float
    """Probability that a group name reveals the circle type (Table II)."""


@dataclass
class WeChatConfig:
    """Full parameter set of the synthetic WeChat-like network."""

    num_users: int = 1000
    seed: int = 0

    circles: dict[RelationType, CircleConfig] = field(
        default_factory=lambda: {
            RelationType.FAMILY: CircleConfig(
                min_size=4, max_size=8, intra_edge_prob=0.85, membership_prob=0.95
            ),
            RelationType.COLLEAGUE: CircleConfig(
                min_size=10, max_size=22, intra_edge_prob=0.45, membership_prob=0.85
            ),
            RelationType.SCHOOLMATE: CircleConfig(
                min_size=6, max_size=18, intra_edge_prob=0.4, membership_prob=0.6
            ),
            RelationType.OTHER: CircleConfig(
                min_size=4, max_size=12, intra_edge_prob=0.35, membership_prob=0.45
            ),
        }
    )

    random_edge_prob: float = 0.002
    """Probability of a random "others" edge between any unrelated user pair
    (scaled down with network size to keep the expected noise degree fixed)."""

    interaction_profiles: dict[RelationType, InteractionProfile] = field(
        default_factory=lambda: {
            RelationType.FAMILY: InteractionProfile(
                silent_prob=0.62,
                rates={
                    InteractionDim.MESSAGE: 2.2,
                    InteractionDim.LIKE_PICTURE: 1.8,
                    InteractionDim.LIKE_ARTICLE: 0.25,
                    InteractionDim.LIKE_GAME: 0.05,
                    InteractionDim.COMMENT_PICTURE: 1.1,
                    InteractionDim.COMMENT_ARTICLE: 0.15,
                    InteractionDim.COMMENT_GAME: 0.03,
                },
            ),
            RelationType.COLLEAGUE: InteractionProfile(
                silent_prob=0.58,
                rates={
                    InteractionDim.MESSAGE: 1.6,
                    InteractionDim.LIKE_PICTURE: 1.4,
                    InteractionDim.LIKE_ARTICLE: 1.1,
                    InteractionDim.LIKE_GAME: 0.08,
                    InteractionDim.COMMENT_PICTURE: 0.7,
                    InteractionDim.COMMENT_ARTICLE: 0.8,
                    InteractionDim.COMMENT_GAME: 0.04,
                },
            ),
            RelationType.SCHOOLMATE: InteractionProfile(
                silent_prob=0.55,
                rates={
                    InteractionDim.MESSAGE: 1.2,
                    InteractionDim.LIKE_PICTURE: 1.5,
                    InteractionDim.LIKE_ARTICLE: 0.7,
                    InteractionDim.LIKE_GAME: 0.9,
                    InteractionDim.COMMENT_PICTURE: 0.8,
                    InteractionDim.COMMENT_ARTICLE: 0.4,
                    InteractionDim.COMMENT_GAME: 0.7,
                },
            ),
            RelationType.OTHER: InteractionProfile(
                silent_prob=0.75,
                rates={
                    InteractionDim.MESSAGE: 0.4,
                    InteractionDim.LIKE_PICTURE: 0.5,
                    InteractionDim.LIKE_ARTICLE: 0.3,
                    InteractionDim.LIKE_GAME: 0.15,
                    InteractionDim.COMMENT_PICTURE: 0.2,
                    InteractionDim.COMMENT_ARTICLE: 0.1,
                    InteractionDim.COMMENT_GAME: 0.08,
                },
            ),
        }
    )

    groups: dict[RelationType, GroupConfig] = field(
        default_factory=lambda: {
            RelationType.FAMILY: GroupConfig(
                groups_per_circle=0.8, member_participation=0.75, indicative_name_prob=0.08
            ),
            RelationType.COLLEAGUE: GroupConfig(
                groups_per_circle=2.2, member_participation=0.7, indicative_name_prob=0.03
            ),
            RelationType.SCHOOLMATE: GroupConfig(
                groups_per_circle=1.6, member_participation=0.65, indicative_name_prob=0.06
            ),
            RelationType.OTHER: GroupConfig(
                groups_per_circle=0.6, member_participation=0.5, indicative_name_prob=0.0
            ),
        }
    )

    # Survey parameters (Table I).
    surveyed_user_fraction: float = 0.25
    """Fraction of users invited to the (synthetic) survey."""
    survey_friend_coverage: float = 0.85
    """Probability that a surveyed user labels a given friend."""
    survey_unknown_second_prob: float = 0.16
    """Probability that the second category is left unspecified."""

    def validate(self) -> None:
        if self.num_users < 20:
            raise DatasetError("num_users must be at least 20")
        if not 0.0 <= self.random_edge_prob <= 1.0:
            raise DatasetError("random_edge_prob must be in [0, 1]")
        for circle in self.circles.values():
            circle.validate()
        for profile in self.interaction_profiles.values():
            profile.validate()
        if not 0.0 < self.surveyed_user_fraction <= 1.0:
            raise DatasetError("surveyed_user_fraction must be in (0, 1]")
        if not 0.0 < self.survey_friend_coverage <= 1.0:
            raise DatasetError("survey_friend_coverage must be in (0, 1]")

    @classmethod
    def small(cls, seed: int = 0) -> "WeChatConfig":
        """A ~300-user network for unit tests and quick examples."""
        config = cls(num_users=300, seed=seed)
        return config

    @classmethod
    def medium(cls, seed: int = 0) -> "WeChatConfig":
        """A ~1,200-user network: the default experiment workload."""
        config = cls(num_users=1200, seed=seed)
        return config

    @classmethod
    def large(cls, seed: int = 0) -> "WeChatConfig":
        """A ~4,000-user network for scalability measurements."""
        config = cls(num_users=4000, seed=seed)
        return config
