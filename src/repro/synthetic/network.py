"""Planted-circle generator of the synthetic WeChat-like social network.

The generative model:

1. Every user gets a profile (:mod:`repro.synthetic.users`).
2. Users are partitioned / sampled into **social circles** of four kinds —
   family, colleague, schoolmate, other — whose size ranges and edge
   densities follow :class:`repro.synthetic.config.CircleConfig`.  Family
   circles are small and dense; colleague circles are large and moderately
   dense, which reproduces the Figure 13 effect (colleague share grows when
   moving from community counts to edge counts).
3. Friendship edges are sampled inside every circle with the circle's
   ``intra_edge_prob``; a small number of random "others" edges is added on
   top.  The *principal* type of an edge (family ≻ colleague ≻ schoolmate ≻
   other, following the paper's "principal type" convention) is recorded as
   the ground truth.
4. Chat groups are spawned per circle and interactions per edge.

The resulting :class:`SocialNetworkDataset` bundles everything the LoCEC
pipeline and all baselines need.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.exceptions import DatasetError
from repro.graph.features import NodeFeatureStore
from repro.graph.graph import Graph
from repro.graph.interactions import InteractionStore
from repro.synthetic.config import WeChatConfig
from repro.synthetic.groups import GroupCollection, generate_groups
from repro.synthetic.interactions_gen import generate_interactions
from repro.synthetic.users import UserProfile, generate_profiles, profiles_to_store
from repro.types import Edge, Node, RelationType, canonical_edge

#: Priority order used to resolve the principal type of an edge covered by
#: circles of several kinds (family strongest, catch-all weakest).
PRINCIPAL_TYPE_PRIORITY = (
    RelationType.FAMILY,
    RelationType.COLLEAGUE,
    RelationType.SCHOOLMATE,
    RelationType.OTHER,
)


@dataclass(frozen=True)
class Circle:
    """A planted social circle (the latent ground-truth structure)."""

    circle_id: int
    circle_type: RelationType
    members: tuple[Node, ...]

    @property
    def size(self) -> int:
        return len(self.members)


@dataclass
class SocialNetworkDataset:
    """Everything the experiments need about one synthetic network."""

    config: WeChatConfig
    graph: Graph
    features: NodeFeatureStore
    interactions: InteractionStore
    edge_types: dict[Edge, RelationType]
    circles: list[Circle]
    groups: GroupCollection
    profiles: dict[int, UserProfile] = field(default_factory=dict)

    @property
    def num_users(self) -> int:
        return self.graph.num_nodes

    @property
    def num_edges(self) -> int:
        return self.graph.num_edges

    def true_type(self, u: Node, v: Node) -> RelationType:
        """Ground-truth type of edge ``(u, v)``."""
        return self.edge_types[canonical_edge(u, v)]

    def edges_of_type(self, relation: RelationType) -> list[Edge]:
        return [edge for edge, label in self.edge_types.items() if label == relation]

    def type_distribution(self) -> dict[RelationType, float]:
        """Ground-truth distribution of edge types."""
        total = len(self.edge_types)
        if total == 0:
            return {}
        distribution: dict[RelationType, float] = {}
        for relation in RelationType:
            count = sum(1 for label in self.edge_types.values() if label == relation)
            if count:
                distribution[relation] = count / total
        return distribution

    def interaction_sparsity(self) -> float:
        """Fraction of edges with no interaction at all (paper: ≈ 0.6)."""
        return self.interactions.sparsity(self.num_edges)


def generate_network(config: WeChatConfig | None = None, seed: int | None = None) -> SocialNetworkDataset:
    """Generate a full synthetic WeChat-like dataset.

    Parameters
    ----------
    config:
        Generator parameters; default is the 1,000-user configuration.
    seed:
        Overrides ``config.seed`` when given.
    """
    config = config or WeChatConfig()
    config.validate()
    rng = random.Random(config.seed if seed is None else seed)

    profiles = generate_profiles(config.num_users, rng)
    circles = _plant_circles(config, rng)
    graph, edge_types = _sample_edges(config, circles, rng)
    for user_id in range(config.num_users):
        graph.add_node(user_id)

    groups = generate_groups(
        [(circle.circle_type, list(circle.members)) for circle in circles], config, rng
    )
    interactions = generate_interactions(edge_types, profiles, config, rng)
    features = profiles_to_store(profiles)

    return SocialNetworkDataset(
        config=config,
        graph=graph,
        features=features,
        interactions=interactions,
        edge_types=edge_types,
        circles=circles,
        groups=groups,
        profiles=profiles,
    )


# --------------------------------------------------------------------- helpers
def _plant_circles(config: WeChatConfig, rng: random.Random) -> list[Circle]:
    """Assign users to circles of each kind."""
    circles: list[Circle] = []
    circle_id = 0
    users = list(range(config.num_users))

    for circle_type in PRINCIPAL_TYPE_PRIORITY:
        circle_config = config.circles.get(circle_type)
        if circle_config is None:
            continue
        members_pool = [user for user in users if rng.random() < circle_config.membership_prob]
        rng.shuffle(members_pool)
        cursor = 0
        # Age homophily for schoolmates: sort the pool by age bucket so circles
        # are age-coherent, which gives the individual features real signal.
        if circle_type == RelationType.SCHOOLMATE:
            members_pool.sort(key=lambda user: (user % 6, rng.random()))
        while cursor < len(members_pool):
            size = rng.randint(circle_config.min_size, circle_config.max_size)
            block = members_pool[cursor : cursor + size]
            cursor += size
            if len(block) < 2:
                break
            circles.append(
                Circle(
                    circle_id=circle_id,
                    circle_type=circle_type,
                    members=tuple(block),
                )
            )
            circle_id += 1
    if not circles:
        raise DatasetError("circle generation produced no circles; check config")
    return circles


def _sample_edges(
    config: WeChatConfig, circles: list[Circle], rng: random.Random
) -> tuple[Graph, dict[Edge, RelationType]]:
    """Sample friendship edges inside circles plus random noise edges."""
    graph = Graph()
    edge_types: dict[Edge, RelationType] = {}
    priority = {relation: rank for rank, relation in enumerate(PRINCIPAL_TYPE_PRIORITY)}

    for circle in circles:
        circle_config = config.circles[circle.circle_type]
        members = list(circle.members)
        for index, u in enumerate(members):
            for v in members[index + 1 :]:
                if rng.random() >= circle_config.intra_edge_prob:
                    continue
                edge = canonical_edge(u, v)
                graph.add_edge(u, v)
                current = edge_types.get(edge)
                if current is None or priority[circle.circle_type] < priority[current]:
                    edge_types[edge] = circle.circle_type

    # Random "others" edges: keep the expected count proportional to n, not n².
    expected_random_edges = config.random_edge_prob * config.num_users * 100
    num_random = int(expected_random_edges)
    for _ in range(num_random):
        u = rng.randrange(config.num_users)
        v = rng.randrange(config.num_users)
        if u == v:
            continue
        edge = canonical_edge(u, v)
        if edge in edge_types:
            continue
        graph.add_edge(u, v)
        edge_types[edge] = RelationType.OTHER

    return graph, edge_types
