"""Synthetic user profiles (the individual feature matrix ``F``).

Profiles carry the four default features of
:data:`repro.types.DEFAULT_FEATURE_NAMES`:

* ``gender`` — 0/1,
* ``age_bucket`` — 1..6 (teens .. 60+),
* ``tenure_years`` — years since joining the platform,
* ``activity_level`` — a latent activity multiplier that also scales the
  user's interaction volume, making the feature genuinely (weakly)
  informative rather than pure noise.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

from repro.graph.features import NodeFeatureStore
from repro.types import DEFAULT_FEATURE_NAMES


@dataclass(frozen=True)
class UserProfile:
    """Profile of one synthetic user."""

    user_id: int
    gender: int
    age_bucket: int
    tenure_years: float
    activity_level: float

    def feature_vector(self) -> np.ndarray:
        """The user's row of the feature matrix ``F``."""
        return np.array(
            [
                float(self.gender),
                float(self.age_bucket),
                self.tenure_years,
                self.activity_level,
            ]
        )


def generate_profiles(num_users: int, rng: random.Random) -> dict[int, UserProfile]:
    """Generate ``num_users`` profiles with WeChat-plausible marginals."""
    profiles: dict[int, UserProfile] = {}
    for user_id in range(num_users):
        age_bucket = rng.choices(
            population=[1, 2, 3, 4, 5, 6],
            weights=[0.08, 0.26, 0.28, 0.2, 0.12, 0.06],
        )[0]
        profiles[user_id] = UserProfile(
            user_id=user_id,
            gender=rng.randint(0, 1),
            age_bucket=age_bucket,
            tenure_years=round(rng.uniform(0.5, 10.0), 2),
            activity_level=round(rng.lognormvariate(0.0, 0.5), 3),
        )
    return profiles


def profiles_to_store(profiles: dict[int, UserProfile]) -> NodeFeatureStore:
    """Pack profiles into a :class:`NodeFeatureStore` (matrix ``F``)."""
    store = NodeFeatureStore(DEFAULT_FEATURE_NAMES)
    for user_id, profile in profiles.items():
        store.set(user_id, profile.feature_vector())
    return store
