"""Interaction generation for the synthetic network.

For every friendship edge the generator draws interaction counts per
dimension from the relationship type's :class:`InteractionProfile`: with
probability ``silent_prob`` the pair never interacts at all (the ~60 %
silent-pair phenomenon the paper reports); otherwise each dimension is an
independent Poisson draw whose rate is scaled by the two users' activity
levels.
"""

from __future__ import annotations

import math
import random

from repro.graph.interactions import InteractionStore
from repro.synthetic.config import WeChatConfig
from repro.synthetic.users import UserProfile
from repro.types import Edge, InteractionDim, RelationType


def generate_interactions(
    edge_types: dict[Edge, RelationType],
    profiles: dict[int, UserProfile],
    config: WeChatConfig,
    rng: random.Random,
) -> InteractionStore:
    """Generate the interaction store ``I`` for all edges.

    Parameters
    ----------
    edge_types:
        Ground-truth relationship type of every edge.
    profiles:
        User profiles (activity levels scale the interaction rates).
    config:
        Generator configuration with per-type interaction profiles.
    rng:
        Shared random generator for reproducibility.
    """
    store = InteractionStore(num_dims=InteractionDim.count())
    for (u, v), relation in edge_types.items():
        profile = config.interaction_profiles[relation]
        if rng.random() < profile.silent_prob:
            continue
        activity = math.sqrt(
            profiles[u].activity_level * profiles[v].activity_level
        ) if u in profiles and v in profiles else 1.0
        for dim, rate in profile.rates.items():
            count = _poisson(rate * activity, rng)
            if count > 0:
                store.record(u, v, dim, count)
    return store


def _poisson(rate: float, rng: random.Random) -> int:
    """Knuth's Poisson sampler (rates here are small, < 10)."""
    if rate <= 0:
        return 0
    threshold = math.exp(-rate)
    k = 0
    product = rng.random()
    while product > threshold and k < 100:
        k += 1
        product *= rng.random()
    return k


def sample_interaction_delta(
    num_dims: int, rng: random.Random, rate: float = 1.5
) -> list[float]:
    """One synthetic interaction-count *delta* vector for replay traffic.

    Draws per-dimension Poisson counts with the same sampler the offline
    generator uses, so online update streams fired by
    :func:`repro.serve.replay_traffic` are distributed like the interactions
    the network was generated with.  At least one dimension is always
    non-zero — an all-zero delta would be a no-op update.
    """
    if num_dims < 1:
        raise ValueError("num_dims must be >= 1")
    delta = [float(_poisson(rate, rng)) for _ in range(num_dims)]
    if not any(delta):
        delta[rng.randrange(num_dims)] = 1.0
    return delta
