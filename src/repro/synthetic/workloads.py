"""Canned experiment workloads built on the synthetic generator.

Every paper experiment starts from the same kind of object: a network plus a
set of labeled edges split into train/test.  :class:`ExperimentWorkload`
bundles that, caches the expensive Phase I division result so parameter
sweeps (Figure 10b, Figure 11) do not re-run Girvan–Newman per setting, and
provides the "percentage of labeled edges" sub-sampling used by Figure 11.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from functools import lru_cache

from repro.core.division import DivisionResult, divide, resolve_backend
from repro.core.labels import split_labeled_edges
from repro.synthetic.config import WeChatConfig
from repro.synthetic.network import SocialNetworkDataset, generate_network
from repro.synthetic.survey import SurveyResult, run_survey
from repro.types import LabeledEdge


@dataclass
class ExperimentWorkload:
    """A dataset + survey + train/test split ready for the experiments."""

    dataset: SocialNetworkDataset
    survey: SurveyResult
    train_edges: list[LabeledEdge]
    test_edges: list[LabeledEdge]
    seed: int = 0
    _division_cache: dict[str, DivisionResult] = field(default_factory=dict, repr=False)

    @property
    def labeled_edges(self) -> list[LabeledEdge]:
        return self.train_edges + self.test_edges

    @property
    def labeled_fraction(self) -> float:
        """Fraction of all network edges that carry a survey label."""
        if self.dataset.num_edges == 0:
            return 0.0
        return len(self.labeled_edges) / self.dataset.num_edges

    def division(
        self, detector: str = "girvan_newman", backend: str = "auto"
    ) -> DivisionResult:
        """Phase I result for the full network, cached per (detector, backend).

        The key uses the *resolved* backend so ``auto`` shares its cache
        entry with whichever concrete backend it resolves to; both backends
        produce identical results, so the split key exists only for
        benchmarks that compare them explicitly.
        """
        key = f"{detector}:{resolve_backend(backend)}"
        if key not in self._division_cache:
            self._division_cache[key] = divide(
                self.dataset.graph, detector=detector, backend=backend
            )
        return self._division_cache[key]

    def subsample_train(
        self, label_fraction: float, seed: int | None = None
    ) -> list[LabeledEdge]:
        """Keep only ``label_fraction`` of the training labels (Figure 11 sweep)."""
        if not 0.0 < label_fraction <= 1.0:
            raise ValueError("label_fraction must be in (0, 1]")
        if label_fraction >= 1.0:
            return list(self.train_edges)
        rng = random.Random(self.seed if seed is None else seed)
        keep = max(1, int(round(len(self.train_edges) * label_fraction)))
        return rng.sample(self.train_edges, keep)


def make_workload(
    scale: str = "small",
    seed: int = 0,
    train_fraction: float = 0.8,
    major_types_only: bool = True,
) -> ExperimentWorkload:
    """Build a ready-to-use experiment workload.

    Parameters
    ----------
    scale:
        ``"tiny"`` (unit tests), ``"small"`` (~300 users), ``"medium"``
        (~1,200 users, the default experiment size) or ``"large"``.
    seed:
        Master seed (generator + survey + splits).
    train_fraction:
        Fraction of labeled edges used for training (paper: 80 %).
    major_types_only:
        Restrict labels to family/colleague/schoolmate (the paper's focus).
    """
    config = _config_for_scale(scale, seed)
    dataset = generate_network(config)
    survey = run_survey(dataset, config)
    labeled = survey.major_type_edges() if major_types_only else survey.labeled_edges
    train, test = split_labeled_edges(labeled, train_fraction=train_fraction, seed=seed)
    return ExperimentWorkload(
        dataset=dataset, survey=survey, train_edges=train, test_edges=test, seed=seed
    )


def _config_for_scale(scale: str, seed: int) -> WeChatConfig:
    scale = scale.lower()
    if scale == "tiny":
        config = WeChatConfig(num_users=120, seed=seed)
    elif scale == "small":
        config = WeChatConfig.small(seed)
    elif scale == "medium":
        config = WeChatConfig.medium(seed)
    elif scale == "large":
        config = WeChatConfig.large(seed)
    else:
        raise ValueError(f"unknown scale {scale!r}; use tiny/small/medium/large")
    return config


@lru_cache(maxsize=4)
def cached_workload(scale: str = "small", seed: int = 0) -> ExperimentWorkload:
    """Process-wide cached workload (used by benchmarks to share setup cost)."""
    return make_workload(scale=scale, seed=seed)
