"""Asynchronous label-propagation community detection (Raghavan et al. 2007).

Used as an ablation alternative to Girvan–Newman in Phase I: it is much
faster (near-linear) but less stable, which is exactly the trade-off the
ablation benchmark quantifies.
"""

from __future__ import annotations

import random
from collections import Counter

from repro.graph.graph import Graph
from repro.types import Node


def label_propagation_communities(
    graph: Graph, max_iterations: int = 100, seed: int | None = 0
) -> tuple[frozenset[Node], ...]:
    """Detect communities by propagating the most frequent neighbour label.

    Parameters
    ----------
    graph:
        Graph to partition.
    max_iterations:
        Safety cap on sweeps over the node set.
    seed:
        Seed for the node-visit order shuffling; pass ``None`` for
        non-deterministic behaviour.

    Returns
    -------
    tuple of frozenset
        The detected communities (a partition of the node set).
    """
    labels: dict[Node, int] = {node: index for index, node in enumerate(graph.nodes())}
    nodes = list(graph.nodes())
    rng = random.Random(seed)

    for _ in range(max_iterations):
        rng.shuffle(nodes)
        changed = False
        for node in nodes:
            neighbors = graph.neighbors(node)
            if not neighbors:
                continue
            counts = Counter(labels[neighbor] for neighbor in neighbors)
            best_count = max(counts.values())
            # Deterministic tie-break: smallest label id among the maxima.
            best_label = min(
                label for label, count in counts.items() if count == best_count
            )
            if labels[node] != best_label:
                labels[node] = best_label
                changed = True
        if not changed:
            break

    groups: dict[int, set[Node]] = {}
    for node, label in labels.items():
        groups.setdefault(label, set()).add(node)
    return tuple(frozenset(block) for block in groups.values())
