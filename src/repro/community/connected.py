"""Connected components, used as the stopping structure for Girvan–Newman."""

from __future__ import annotations

from collections import deque

from repro.graph.graph import Graph
from repro.types import Node


def connected_components(graph: Graph) -> list[set[Node]]:
    """Return the connected components of ``graph`` as a list of node sets.

    Components are returned in order of first discovery (insertion order of
    their smallest-indexed discovered node), which keeps the output
    deterministic for a deterministic graph construction order.
    """
    seen: set[Node] = set()
    components: list[set[Node]] = []
    for start in graph.nodes():
        if start in seen:
            continue
        component: set[Node] = {start}
        queue: deque[Node] = deque([start])
        seen.add(start)
        while queue:
            current = queue.popleft()
            for neighbor in graph.neighbors(current):
                if neighbor not in seen:
                    seen.add(neighbor)
                    component.add(neighbor)
                    queue.append(neighbor)
        components.append(component)
    return components


def number_connected_components(graph: Graph) -> int:
    """Number of connected components of ``graph``."""
    return len(connected_components(graph))


def node_component_map(graph: Graph) -> dict[Node, int]:
    """Map every node to the index of its connected component."""
    mapping: dict[Node, int] = {}
    for index, component in enumerate(connected_components(graph)):
        for node in component:
            mapping[node] = index
    return mapping
