"""A single-level Louvain-style greedy modularity optimiser.

Provided as a second ablation alternative for Phase I.  The implementation
runs repeated local-move passes followed by graph aggregation, which is the
classic Louvain structure (Blondel et al. 2008), restricted to unweighted
input graphs (edge weights appear only in the aggregated levels).
"""

from __future__ import annotations

import random
from typing import Hashable

from repro.graph.graph import Graph
from repro.types import Node


def louvain_communities(
    graph: Graph, seed: int | None = 0, max_levels: int = 10
) -> tuple[frozenset[Node], ...]:
    """Detect communities by greedy modularity optimisation.

    Returns a partition of the original node set.  Deterministic for a fixed
    ``seed`` and graph construction order.
    """
    if graph.num_nodes == 0:
        return ()
    if graph.num_edges == 0:
        return tuple(frozenset([node]) for node in graph.nodes())

    # Weighted adjacency for aggregated levels; level 0 weights are all 1.
    adjacency: dict[Hashable, dict[Hashable, float]] = {
        node: {neighbor: 1.0 for neighbor in graph.neighbors(node)}
        for node in graph.nodes()
    }
    # Each "super node" maps to the original nodes it contains.
    contents: dict[Hashable, set[Node]] = {node: {node} for node in graph.nodes()}
    rng = random.Random(seed)

    for _ in range(max_levels):
        communities, improved = _one_level(adjacency, rng)
        if not improved:
            break
        adjacency, contents = _aggregate(adjacency, contents, communities)
        if len(adjacency) == len(communities) == 1:
            break

    return tuple(frozenset(block) for block in contents.values())


def _one_level(
    adjacency: dict[Hashable, dict[Hashable, float]], rng: random.Random
) -> tuple[dict[Hashable, int], bool]:
    """One pass of local moves; returns (node → community id, improved?)."""
    nodes = list(adjacency)
    community: dict[Hashable, int] = {node: index for index, node in enumerate(nodes)}
    degree = {node: sum(weights.values()) for node, weights in adjacency.items()}
    community_degree = dict(
        (community[node], degree[node]) for node in nodes
    )
    total_weight = sum(degree.values()) / 2.0
    if total_weight == 0:
        return community, False

    improved_overall = False
    for _ in range(20):
        rng.shuffle(nodes)
        moved = False
        for node in nodes:
            current = community[node]
            # Weights from node to each neighbouring community.
            links: dict[int, float] = {}
            for neighbor, weight in adjacency[node].items():
                if neighbor == node:
                    continue
                links[community[neighbor]] = links.get(community[neighbor], 0.0) + weight
            community_degree[current] -= degree[node]
            best_community = current
            best_gain = links.get(current, 0.0) - (
                community_degree[current] * degree[node] / (2.0 * total_weight)
            )
            # Candidates are scanned in ascending community id so the winner
            # does not depend on dict insertion order; the CSR backend scans
            # the same ascending order over its bincount-ed gains.
            for candidate, link_weight in sorted(links.items()):
                gain = link_weight - (
                    community_degree.get(candidate, 0.0)
                    * degree[node]
                    / (2.0 * total_weight)
                )
                if gain > best_gain + 1e-12:
                    best_gain = gain
                    best_community = candidate
            community_degree[best_community] = (
                community_degree.get(best_community, 0.0) + degree[node]
            )
            if best_community != current:
                community[node] = best_community
                moved = True
                improved_overall = True
        if not moved:
            break

    # Renumber communities densely.
    remap: dict[int, int] = {}
    for node in community:
        remap.setdefault(community[node], len(remap))
        community[node] = remap[community[node]]
    return community, improved_overall


def _aggregate(
    adjacency: dict[Hashable, dict[Hashable, float]],
    contents: dict[Hashable, set[Node]],
    communities: dict[Hashable, int],
) -> tuple[dict[Hashable, dict[Hashable, float]], dict[Hashable, set[Node]]]:
    """Collapse each community into a super node."""
    new_adjacency: dict[Hashable, dict[Hashable, float]] = {}
    new_contents: dict[Hashable, set[Node]] = {}
    for node, block in communities.items():
        new_contents.setdefault(block, set()).update(contents[node])
        new_adjacency.setdefault(block, {})
    for node, weights in adjacency.items():
        source = communities[node]
        for neighbor, weight in weights.items():
            target = communities[neighbor]
            # Intra-community edges become a self-loop on the super node; both
            # directions of each edge are visited, so the self-loop weight ends
            # up at 2 × (internal weight), keeping super-node degrees correct.
            new_adjacency[source][target] = new_adjacency[source].get(target, 0.0) + weight
    return new_adjacency, new_contents
