"""Girvan–Newman community detection (the paper's Phase I algorithm).

The paper runs Girvan–Newman (GN) inside every ego network to find the ego's
*local communities* (friend circles).  GN iteratively removes the edge with
the highest betweenness; every time removal splits a connected component the
current partition is a candidate.  We select the candidate with the highest
modularity, which is the standard way to cut the GN dendrogram and matches
the paper's qualitative examples (Figure 7: the ego network of node 1 splits
into ``{2, 3, 4}`` and ``{5, 6}``).

Ego networks are small (median community size 8, 90 % of communities under
30 users), so the O(m²n) worst case of GN is acceptable — exactly the
argument the paper makes for running GN *locally* rather than globally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.community.betweenness import edge_betweenness
from repro.community.connected import connected_components
from repro.community.modularity import modularity
from repro.exceptions import CommunityError
from repro.graph.graph import Graph
from repro.types import Node


@dataclass(frozen=True)
class GirvanNewmanResult:
    """Result of running Girvan–Newman on one graph.

    Attributes
    ----------
    communities:
        The selected partition (list of frozensets of nodes).
    modularity:
        Modularity of the selected partition on the original graph.
    levels_explored:
        Number of dendrogram levels that were evaluated.
    """

    communities: tuple[frozenset[Node], ...]
    modularity: float
    levels_explored: int

    def community_of(self, node: Node) -> frozenset[Node]:
        """The community containing ``node``."""
        for block in self.communities:
            if node in block:
                return block
        raise CommunityError(f"node {node!r} is not covered by the partition")

    @property
    def sizes(self) -> list[int]:
        return sorted((len(block) for block in self.communities), reverse=True)


def girvan_newman_levels(graph: Graph) -> Iterator[list[set[Node]]]:
    """Yield successive GN partitions, from coarsest to finest.

    The first yielded partition is the set of connected components of the
    input graph; each subsequent partition has at least one more component.
    The iteration stops when no edges remain.
    """
    working = graph.copy()
    yield [set(block) for block in connected_components(working)]
    current_count = len(connected_components(working))
    while working.num_edges > 0:
        betweenness = edge_betweenness(working)
        # Deterministic tie-break: highest betweenness, then lexicographic
        # edge.  Values are quantized first so that mathematically tied edges
        # (whose floating-point accumulations may differ in the last ulp
        # depending on summation order) resolve identically across the dict
        # and CSR backends.
        target = max(
            betweenness.items(), key=lambda kv: (round(kv[1], 9), repr(kv[0]))
        )[0]
        working.remove_edge(*target)
        components = connected_components(working)
        if len(components) > current_count:
            current_count = len(components)
            yield [set(block) for block in components]


def girvan_newman(
    graph: Graph,
    max_communities: int | None = None,
    min_community_size: int = 1,
) -> GirvanNewmanResult:
    """Run Girvan–Newman and return the best-modularity partition.

    Parameters
    ----------
    graph:
        The (small) graph to partition, typically an ego network.
    max_communities:
        Optional cap on the number of communities; dendrogram levels with
        more communities than this are not considered.
    min_community_size:
        Singleton/tiny communities below this size are still returned (the
        partition must cover all nodes) but a level is never *preferred*
        solely because it shattered the graph into tiny fragments — this is
        naturally handled by modularity, the parameter only provides an
        early-exit: once every community at a level is smaller than
        ``min_community_size`` the search stops.

    Notes
    -----
    For empty graphs the result contains zero communities; for edgeless
    graphs every node is its own community (these are the "communities of
    size one" whose tightness the paper defines as 1).
    """
    if graph.num_nodes == 0:
        return GirvanNewmanResult(communities=(), modularity=0.0, levels_explored=0)
    if graph.num_edges == 0:
        singleton = tuple(frozenset([node]) for node in graph.nodes())
        return GirvanNewmanResult(
            communities=singleton, modularity=0.0, levels_explored=1
        )

    best_partition: list[set[Node]] | None = None
    best_q = float("-inf")
    levels = 0
    for partition in girvan_newman_levels(graph):
        levels += 1
        if max_communities is not None and len(partition) > max_communities:
            break
        q = modularity(graph, partition)
        if q > best_q:
            best_q = q
            best_partition = partition
        if min_community_size > 1 and all(
            len(block) < min_community_size for block in partition
        ):
            break

    assert best_partition is not None  # at least one level is always yielded
    communities = tuple(frozenset(block) for block in best_partition)
    return GirvanNewmanResult(
        communities=communities, modularity=best_q, levels_explored=levels
    )


def partition_to_membership(
    communities: Sequence[frozenset[Node] | set[Node]],
) -> dict[Node, int]:
    """Convert a partition into a node → community-index mapping."""
    membership: dict[Node, int] = {}
    for index, block in enumerate(communities):
        for node in block:
            if node in membership:
                raise CommunityError(f"node {node!r} appears in multiple communities")
            membership[node] = index
    return membership
