"""Newman modularity of a graph partition.

Girvan–Newman produces a dendrogram of partitions; LoCEC needs one concrete
partition per ego network, so we follow the standard practice of selecting
the dendrogram level with the highest modularity.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.exceptions import CommunityError
from repro.graph.graph import Graph
from repro.types import Node


def modularity(graph: Graph, communities: Sequence[Iterable[Node]]) -> float:
    """Newman modularity ``Q`` of ``communities`` on ``graph``.

    ``Q = sum_c [ L_c / m  -  (d_c / 2m)^2 ]`` where ``L_c`` is the number of
    intra-community edges, ``d_c`` the total degree of community ``c`` and
    ``m`` the number of edges in the graph.

    Raises
    ------
    CommunityError
        If the communities do not form a partition of the graph's node set.
    """
    m = graph.num_edges
    if m == 0:
        return 0.0
    community_sets = [set(block) for block in communities]
    _validate_partition(graph, community_sets)

    q = 0.0
    for block in community_sets:
        intra_edges = 0
        total_degree = 0
        for node in block:
            total_degree += graph.degree(node)
            intra_edges += sum(1 for other in graph.neighbors(node) if other in block)
        intra_edges //= 2
        q += intra_edges / m - (total_degree / (2.0 * m)) ** 2
    return q


def _validate_partition(graph: Graph, community_sets: Sequence[set[Node]]) -> None:
    covered: set[Node] = set()
    for block in community_sets:
        overlap = covered & block
        if overlap:
            raise CommunityError(f"communities overlap on nodes {sorted(map(repr, overlap))}")
        covered |= block
    graph_nodes = set(graph.nodes())
    if covered != graph_nodes:
        missing = graph_nodes - covered
        extra = covered - graph_nodes
        raise CommunityError(
            "communities must partition the node set "
            f"(missing={len(missing)}, extraneous={len(extra)})"
        )
