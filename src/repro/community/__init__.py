"""Community-detection substrate: Girvan–Newman and ablation alternatives."""

from repro.community.betweenness import edge_betweenness
from repro.community.connected import (
    connected_components,
    node_component_map,
    number_connected_components,
)
from repro.community.girvan_newman import (
    GirvanNewmanResult,
    girvan_newman,
    girvan_newman_levels,
    partition_to_membership,
)
from repro.community.label_propagation import label_propagation_communities
from repro.community.louvain import louvain_communities
from repro.community.modularity import modularity

__all__ = [
    "edge_betweenness",
    "connected_components",
    "number_connected_components",
    "node_component_map",
    "girvan_newman",
    "girvan_newman_levels",
    "GirvanNewmanResult",
    "partition_to_membership",
    "label_propagation_communities",
    "louvain_communities",
    "modularity",
]
