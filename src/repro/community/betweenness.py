"""Brandes' algorithm for edge betweenness centrality.

Girvan–Newman repeatedly removes the edge with the highest betweenness, so
this is the computational core of LoCEC's Phase I.  The implementation
follows Brandes (2001) adapted to accumulate *edge* (rather than node)
dependencies, for unweighted undirected graphs.
"""

from __future__ import annotations

from collections import deque

from repro.graph.graph import Graph
from repro.types import Edge, Node, canonical_edge


def edge_betweenness(graph: Graph) -> dict[Edge, float]:
    """Compute edge betweenness centrality for every edge of ``graph``.

    Returns
    -------
    dict
        Mapping from canonical edge to its betweenness value.  Values are
        *not* normalised; Girvan–Newman only needs the argmax, and the
        un-normalised values make unit-testing against hand counts easier.
        Each (unordered) pair of nodes contributes once, i.e. the undirected
        convention of halving the directed accumulation is applied.
    """
    betweenness: dict[Edge, float] = {edge: 0.0 for edge in graph.edges()}
    for source in graph.nodes():
        _accumulate_single_source(graph, source, betweenness)
    # Each undirected pair (s, t) was counted from both s and t.
    for edge in betweenness:
        betweenness[edge] /= 2.0
    return betweenness


def _accumulate_single_source(
    graph: Graph, source: Node, betweenness: dict[Edge, float]
) -> None:
    """Accumulate edge dependencies for shortest paths from ``source``."""
    # Single-source shortest paths (BFS, unweighted).
    stack: list[Node] = []
    predecessors: dict[Node, list[Node]] = {node: [] for node in graph.nodes()}
    sigma: dict[Node, float] = dict.fromkeys(graph.nodes(), 0.0)
    distance: dict[Node, int] = dict.fromkeys(graph.nodes(), -1)
    sigma[source] = 1.0
    distance[source] = 0
    queue: deque[Node] = deque([source])
    while queue:
        current = queue.popleft()
        stack.append(current)
        for neighbor in graph.neighbors(current):
            if distance[neighbor] < 0:
                distance[neighbor] = distance[current] + 1
                queue.append(neighbor)
            if distance[neighbor] == distance[current] + 1:
                sigma[neighbor] += sigma[current]
                predecessors[neighbor].append(current)

    # Back-propagation of dependencies onto edges.
    delta: dict[Node, float] = dict.fromkeys(graph.nodes(), 0.0)
    while stack:
        node = stack.pop()
        for pred in predecessors[node]:
            if sigma[node] == 0:
                continue
            contribution = (sigma[pred] / sigma[node]) * (1.0 + delta[node])
            betweenness[canonical_edge(pred, node)] += contribution
            delta[pred] += contribution
