"""The repo-wide resource lifecycle protocol.

Several classes own process pools and POSIX shared-memory leases —
:class:`repro.runtime.executor.ShardedDivisionExecutor`,
:class:`repro.core.aggregation.FeatureMatrixBuilder`,
:class:`repro.runtime.phase2_exec.Phase2ShardedRunner`,
:class:`repro.serve.ServingSession` — and all follow one contract:

* usable as a context manager (``with ... as resource:``);
* ``close()`` releases everything and is **idempotent** (safe to call
  twice, safe after ``__exit__``);
* a closed owner may lazily re-acquire resources on next use *or* refuse
  further use — but must never leak the old ones.

:class:`Closeable` states that contract as a runtime-checkable structural
protocol, so tests can assert conformance with ``isinstance`` and new
resource owners need no inheritance — just the three methods.  Lint rule
``MP004`` (:mod:`repro.lint.rules.mp_safety`) enforces it statically for
every class owning an ``ShmLease``, directly or through an owning resource.
"""

from __future__ import annotations

from typing import Any, Protocol, runtime_checkable

__all__ = ["Closeable"]


@runtime_checkable
class Closeable(Protocol):
    """Structural protocol for lease/pool owners (see module docstring)."""

    def close(self) -> None:
        """Release owned resources; must be idempotent."""
        ...  # pragma: no cover - protocol stub

    def __enter__(self) -> Any:
        ...  # pragma: no cover - protocol stub

    def __exit__(self, *exc_info: object) -> None:
        ...  # pragma: no cover - protocol stub
