"""Exception hierarchy for the LoCEC reproduction library.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  Sub-classes are deliberately fine-grained: the graph
substrate, the ML substrate and the LoCEC pipeline each raise distinct error
types so that tests and downstream users can discriminate failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


def _rebuild_exception(
    cls: "type[BaseException]", state: dict, args: tuple
) -> BaseException:
    """Unpickle helper for exceptions whose ``__init__`` signature does not
    match ``args`` — rebuilds the instance without re-running ``__init__`` so
    errors survive the trip back from worker processes."""
    exc = cls.__new__(cls)
    exc.args = args
    exc.__dict__.update(state)
    return exc


class _PicklableErrorMixin:
    """Gives an exception a signature-independent pickle round-trip.

    ``BaseException.__reduce__`` replays ``__init__(*self.args)``, and
    ``args`` holds the *formatted message*, not the constructor arguments —
    so any exception with a custom ``__init__`` signature either fails to
    unpickle or rebuilds garbled.  Every such class must carry this mixin
    (lint rule ``MP002`` enforces it): the shard runtime ships exceptions
    across process boundaries as first-class results.
    """

    def __reduce__(self) -> "tuple":  # type: ignore[override]
        return (_rebuild_exception, (type(self), self.__dict__, self.args))


class GraphError(ReproError):
    """Base class for errors raised by the graph substrate."""


class NodeNotFoundError(_PicklableErrorMixin, GraphError, KeyError):
    """A referenced node does not exist in the graph."""

    def __init__(self, node: object) -> None:
        super().__init__(f"node {node!r} is not in the graph")
        self.node = node


class EdgeNotFoundError(_PicklableErrorMixin, GraphError, KeyError):
    """A referenced edge does not exist in the graph."""

    def __init__(self, u: object, v: object) -> None:
        super().__init__(f"edge ({u!r}, {v!r}) is not in the graph")
        self.edge = (u, v)


class SelfLoopError(_PicklableErrorMixin, GraphError, ValueError):
    """An operation attempted to add a self-loop, which the model forbids."""

    def __init__(self, node: object) -> None:
        super().__init__(f"self-loops are not allowed (node {node!r})")
        self.node = node


class FeatureError(ReproError):
    """Invalid node-feature or interaction-feature data."""


class CommunityError(ReproError):
    """Errors raised by the community-detection algorithms."""


class NotFittedError(_PicklableErrorMixin, ReproError, RuntimeError):
    """An estimator was used before being fitted."""

    def __init__(self, estimator: object = None) -> None:
        name = type(estimator).__name__ if estimator is not None else "estimator"
        super().__init__(
            f"{name} is not fitted yet; call fit() before using this method"
        )


class ModelConfigError(ReproError, ValueError):
    """An ML model was configured with invalid hyper-parameters."""


class DimensionMismatchError(ReproError, ValueError):
    """Input arrays have inconsistent shapes."""


class TrainingDivergedError(ModelConfigError):
    """Training produced a non-finite loss (exploding gradients, bad inputs).

    Raised instead of silently recording ``NaN``/``inf`` into a model's loss
    history; the message names the epoch at which the divergence occurred.
    """


class PipelineError(ReproError):
    """Errors raised by the LoCEC pipeline orchestration."""


class DatasetError(ReproError):
    """Errors raised by the synthetic dataset generators."""


class ExperimentError(ReproError):
    """Errors raised by the experiment harness."""


# --------------------------------------------------------------- graph IO
class EdgeListError(_PicklableErrorMixin, GraphError, DatasetError):
    """Base class for edge-list / labeled-edge parsing errors.

    Derives from both :class:`GraphError` (the data is graph input) and
    :class:`DatasetError` (callers that predate the fine-grained hierarchy
    catch that).  Every instance names the offending file and 1-based line
    number via ``.path`` / ``.lineno``.
    """

    def __init__(self, path: object, lineno: int, message: str) -> None:
        super().__init__(f"{path}:{lineno}: {message}")
        self.path = str(path)
        self.lineno = lineno


class MalformedLineError(EdgeListError):
    """A line could not be parsed into the expected fields."""


class NonFiniteWeightError(EdgeListError):
    """An edge weight column parsed but is NaN or infinite."""


class DuplicateEdgeError(EdgeListError):
    """The same undirected edge appears more than once in the input."""


# ------------------------------------------------------ execution runtime
class ExecutorError(PipelineError):
    """Base class for failures inside the sharded execution runtime."""


class ShardFailedError(_PicklableErrorMixin, ExecutorError):
    """A shard task failed permanently (non-retryable or retries exhausted)."""

    def __init__(self, shard_id: int, attempts: int, cause: BaseException) -> None:
        super().__init__(
            f"shard {shard_id} failed after {attempts} attempt(s): {cause!r}"
        )
        self.shard_id = shard_id
        self.attempts = attempts
        self.cause = cause


class RetryExhaustedError(ShardFailedError):
    """A shard kept failing with retryable errors until the attempt budget ran out."""

    def __init__(self, shard_id: int, attempts: int, cause: BaseException) -> None:
        ExecutorError.__init__(
            self,
            f"shard {shard_id}: retries exhausted after {attempts} attempt(s); "
            f"last error: {cause!r}",
        )
        self.shard_id = shard_id
        self.attempts = attempts
        self.cause = cause


class ShardTimeoutError(_PicklableErrorMixin, ExecutorError):
    """A shard task exceeded its per-shard timeout (retryable by default)."""

    def __init__(self, shard_id: int, timeout_seconds: float) -> None:
        super().__init__(
            f"shard {shard_id} timed out after {timeout_seconds:g}s"
        )
        self.shard_id = shard_id
        self.timeout_seconds = timeout_seconds


class WorkerCrashError(_PicklableErrorMixin, ExecutorError):
    """A worker process died mid-task (hard kill / broken pool); retryable."""

    def __init__(self, shard_id: int | None = None, detail: str = "") -> None:
        where = f"shard {shard_id}" if shard_id is not None else "a shard task"
        suffix = f": {detail}" if detail else ""
        super().__init__(f"worker process crashed while running {where}{suffix}")
        self.shard_id = shard_id
        self.detail = detail


class CheckpointError(ExecutorError):
    """A shard checkpoint could not be written or read."""


class StalePhase2KernelError(_PicklableErrorMixin, ExecutorError):
    """A published Phase II kernel snapshot no longer matches its stores.

    The sharded Phase II runner snapshots the compiled kernel into shared
    memory once and serves every subsequent call from that snapshot.  The
    feature/interaction stores carry write counters (``version``); when a
    probe observes the counters moving past the published snapshot the
    runner refuses to serve stale matrices and raises this error instead.
    """

    def __init__(
        self, expected: tuple[int, int], actual: tuple[int, int]
    ) -> None:
        super().__init__(
            "published Phase II kernel is stale: store versions "
            f"{actual} diverged from published snapshot {expected}; "
            "republish (or call FeatureMatrixBuilder.invalidate_kernel)"
        )
        self.expected = expected
        self.actual = actual
