"""Exception hierarchy for the LoCEC reproduction library.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  Sub-classes are deliberately fine-grained: the graph
substrate, the ML substrate and the LoCEC pipeline each raise distinct error
types so that tests and downstream users can discriminate failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class GraphError(ReproError):
    """Base class for errors raised by the graph substrate."""


class NodeNotFoundError(GraphError, KeyError):
    """A referenced node does not exist in the graph."""

    def __init__(self, node: object) -> None:
        super().__init__(f"node {node!r} is not in the graph")
        self.node = node


class EdgeNotFoundError(GraphError, KeyError):
    """A referenced edge does not exist in the graph."""

    def __init__(self, u: object, v: object) -> None:
        super().__init__(f"edge ({u!r}, {v!r}) is not in the graph")
        self.edge = (u, v)


class SelfLoopError(GraphError, ValueError):
    """An operation attempted to add a self-loop, which the model forbids."""

    def __init__(self, node: object) -> None:
        super().__init__(f"self-loops are not allowed (node {node!r})")
        self.node = node


class FeatureError(ReproError):
    """Invalid node-feature or interaction-feature data."""


class CommunityError(ReproError):
    """Errors raised by the community-detection algorithms."""


class NotFittedError(ReproError, RuntimeError):
    """An estimator was used before being fitted."""

    def __init__(self, estimator: object = None) -> None:
        name = type(estimator).__name__ if estimator is not None else "estimator"
        super().__init__(
            f"{name} is not fitted yet; call fit() before using this method"
        )


class ModelConfigError(ReproError, ValueError):
    """An ML model was configured with invalid hyper-parameters."""


class DimensionMismatchError(ReproError, ValueError):
    """Input arrays have inconsistent shapes."""


class TrainingDivergedError(ModelConfigError):
    """Training produced a non-finite loss (exploding gradients, bad inputs).

    Raised instead of silently recording ``NaN``/``inf`` into a model's loss
    history; the message names the epoch at which the divergence occurred.
    """


class PipelineError(ReproError):
    """Errors raised by the LoCEC pipeline orchestration."""


class DatasetError(ReproError):
    """Errors raised by the synthetic dataset generators."""


class ExperimentError(ReproError):
    """Errors raised by the experiment harness."""
