"""Gradient-boosted decision trees with a softmax objective (XGBoost-style).

The paper uses XGBoost in three places:

* the plain **XGBoost** edge-classification baseline (Table IV),
* **LoCEC-XGB**, where a GBDT classifies local communities from aggregated
  mean/std feature vectors, and
* the leaf values of the boosted trees serve as the community embedding
  ``r_C`` for the combination phase ("values of the leaf nodes ... are
  considered as community embedding", Section IV-C).

This module implements multi-class Newton boosting over the
:class:`repro.ml.tree.GradientRegressionTree` weak learner, including the
leaf-value / leaf-index embeddings needed by LoCEC-XGB.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ModelConfigError
from repro.ml.base import check_fitted, check_X_y, one_hot, softmax
from repro.ml.forest import ForestTensor, resolve_ml_backend
from repro.ml.tree import GradientRegressionTree, RegressionTreeConfig


class GradientBoostedClassifier:
    """Multi-class gradient boosting with softmax loss.

    Parameters
    ----------
    num_rounds:
        Number of boosting rounds; each round grows one tree per class.
    learning_rate:
        Shrinkage applied to every tree's contribution.
    max_depth, min_samples_leaf, reg_lambda, gamma:
        Per-tree hyper-parameters (see :class:`RegressionTreeConfig`).
    subsample:
        Row subsampling fraction per round (1.0 disables subsampling).
    num_classes:
        Number of classes; inferred from the labels when ``None``.
    seed:
        Seed for row subsampling.
    backend:
        ``"node"`` for per-row ``_TreeNode`` walks, ``"array"`` for the
        stacked :class:`~repro.ml.forest.ForestTensor` kernels (one batched
        traversal over all rounds x classes), ``"hist"`` for the histogram
        split search of :mod:`repro.ml.hist` (the feature matrix is
        quantized into at most ``max_bins`` bins **once per fit** and every
        tree of every round searches splits in ``O(rows + bins)`` per
        feature), or ``"auto"`` (default) to pick by row count
        (:func:`~repro.ml.forest.resolve_ml_backend`).  Fitted models and
        every prediction are bit-identical between ``node`` and ``array``;
        ``hist`` chooses identical splits while each feature has at most
        ``max_bins`` distinct values and snaps thresholds to quantile bin
        edges beyond that.
    max_bins:
        Histogram resolution of the ``"hist"`` backend (ignored by the
        exact backends).

    Examples
    --------
    >>> import numpy as np
    >>> rng = np.random.default_rng(0)
    >>> X = rng.normal(size=(80, 3))
    >>> y = (X[:, 0] + X[:, 1] > 0).astype(int)
    >>> model = GradientBoostedClassifier(num_rounds=10).fit(X, y)
    >>> float((model.predict(X) == y).mean()) > 0.9
    True
    """

    def __init__(
        self,
        num_rounds: int = 30,
        learning_rate: float = 0.3,
        max_depth: int = 3,
        min_samples_leaf: int = 2,
        reg_lambda: float = 1.0,
        gamma: float = 0.0,
        subsample: float = 1.0,
        num_classes: int | None = None,
        seed: int = 0,
        backend: str = "auto",
        max_bins: int = 256,
    ) -> None:
        if num_rounds < 1:
            raise ModelConfigError("num_rounds must be >= 1")
        if not 0.0 < learning_rate <= 1.0:
            raise ModelConfigError("learning_rate must be in (0, 1]")
        if not 0.0 < subsample <= 1.0:
            raise ModelConfigError("subsample must be in (0, 1]")
        self.num_rounds = num_rounds
        self.learning_rate = learning_rate
        self.tree_config = RegressionTreeConfig(
            max_depth=max_depth,
            min_samples_leaf=min_samples_leaf,
            reg_lambda=reg_lambda,
            gamma=gamma,
            max_bins=max_bins,
        )
        self.tree_config.validate()
        self.subsample = subsample
        self.num_classes = num_classes
        self.seed = seed
        self.backend = backend
        self._resolved_backend = resolve_ml_backend(backend)
        self.trees_: list[list[GradientRegressionTree]] | None = None
        self.forest_: ForestTensor | None = None
        self.base_score_: np.ndarray | None = None
        self.train_loss_history_: list[float] = []

    # --------------------------------------------------------------------- fit
    def fit(self, X: np.ndarray, y: np.ndarray) -> "GradientBoostedClassifier":
        """Fit the boosted ensemble on features ``X`` and integer labels ``y``."""
        X, y = check_X_y(X, y)
        num_classes = self.num_classes or int(y.max()) + 1
        if num_classes < 2:
            raise ModelConfigError("need at least two classes")
        n_samples = X.shape[0]
        targets = one_hot(y, num_classes)

        # Base score: log prior per class, so early rounds start from the
        # empirical class distribution instead of uniform.
        priors = np.clip(targets.mean(axis=0), 1e-6, 1.0)
        self.base_score_ = np.log(priors)
        raw_scores = np.tile(self.base_score_, (n_samples, 1))

        rng = np.random.default_rng(self.seed)
        self.trees_ = []
        self.train_loss_history_ = []

        # The hist backend quantizes the feature matrix exactly once per fit;
        # every tree of every round reuses the codes (row-subset copies of
        # the codes when subsampling).  Resolving here (with the row count)
        # also pins the auto choice for all trees, so a subsampled round
        # cannot flip backends mid-fit.
        resolved = resolve_ml_backend(self.backend, num_rows=n_samples)
        self._resolved_backend = resolved
        binned = None
        if resolved == "hist":
            from repro.ml.hist import BinnedDataset

            binned = BinnedDataset.from_matrix(X, self.tree_config.max_bins)

        for _ in range(self.num_rounds):
            probabilities = softmax(raw_scores)
            gradients = probabilities - targets
            hessians = probabilities * (1.0 - probabilities)

            if self.subsample < 1.0:
                sample_size = max(2, int(round(self.subsample * n_samples)))
                row_idx = rng.choice(n_samples, size=sample_size, replace=False)
                round_binned = binned.subset(row_idx) if binned is not None else None
                X_round = X[row_idx]
            else:
                row_idx = np.arange(n_samples)
                round_binned = binned
                X_round = X

            round_trees: list[GradientRegressionTree] = []
            for class_index in range(num_classes):
                tree = GradientRegressionTree(self.tree_config, backend=resolved)
                tree.fit(
                    X_round,
                    gradients[row_idx, class_index],
                    hessians[row_idx, class_index],
                    binned=round_binned,
                )
                raw_scores[:, class_index] += self.learning_rate * tree.predict(X)
                round_trees.append(tree)
            self.trees_.append(round_trees)

            loss = -float(
                np.mean(
                    np.sum(
                        targets * np.log(np.clip(softmax(raw_scores), 1e-12, 1.0)),
                        axis=1,
                    )
                )
            )
            self.train_loss_history_.append(loss)

        self._num_classes = num_classes
        self.forest_ = None
        if self._resolved_backend in ("array", "hist"):
            self.forest_ = ForestTensor.from_trees(
                [tree for round_trees in self.trees_ for tree in round_trees]
            )
        return self

    # --------------------------------------------------------------- inference
    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Raw (pre-softmax) scores of shape ``(n_samples, n_classes)``."""
        X = self._check_inference_input(X)
        if self.forest_ is not None:
            return self.forest_.decision_function(
                X, self.base_score_, self.learning_rate, self._num_classes
            )
        raw = np.tile(self.base_score_, (X.shape[0], 1))
        for round_trees in self.trees_:
            for class_index, tree in enumerate(round_trees):
                raw[:, class_index] += self.learning_rate * tree.predict(X)
        return raw

    def predict_raw(self, X: np.ndarray) -> np.ndarray:
        """Alias of :meth:`decision_function` (XGBoost's ``predict_raw``)."""
        return self.decision_function(X)

    def _check_inference_input(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self, "trees_")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        return X

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Class-probability matrix of shape ``(n_samples, n_classes)``."""
        return softmax(self.decision_function(X))

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted class index for each row of ``X``."""
        return np.argmax(self.decision_function(X), axis=1)

    # -------------------------------------------------------------- embeddings
    def leaf_values(self, X: np.ndarray) -> np.ndarray:
        """Leaf-*value* embedding: shape ``(n_samples, num_rounds * n_classes)``.

        This is the embedding the paper uses for LoCEC-XGB's community
        representation ``r_C``: each column is the leaf weight the sample
        reaches in one of the generated trees.
        """
        X = self._check_inference_input(X)
        if self.forest_ is not None:
            return self.forest_.leaf_values_matrix(X)
        columns = [
            tree.predict(X) for round_trees in self.trees_ for tree in round_trees
        ]
        return np.column_stack(columns)

    def leaf_indices(self, X: np.ndarray) -> np.ndarray:
        """Leaf-*index* embedding (as in Facebook's GBDT+LR): same shape as
        :meth:`leaf_values` but with integer leaf ids."""
        X = self._check_inference_input(X)
        if self.forest_ is not None:
            return self.forest_.leaf_indices_matrix(X)
        columns = [
            tree.apply(X) for round_trees in self.trees_ for tree in round_trees
        ]
        return np.column_stack(columns)

    @property
    def num_trees(self) -> int:
        """Total number of grown trees (rounds × classes)."""
        check_fitted(self, "trees_")
        return sum(len(round_trees) for round_trees in self.trees_)
