"""Dataset splitting and feature scaling utilities."""

from __future__ import annotations

from typing import Sequence, TypeVar

import numpy as np

from repro.exceptions import DimensionMismatchError, ModelConfigError, NotFittedError

T = TypeVar("T")


def train_test_split_indices(
    num_samples: int,
    test_fraction: float = 0.2,
    seed: int | None = 0,
    stratify: Sequence[int] | np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Split ``range(num_samples)`` into train and test index arrays.

    Parameters
    ----------
    num_samples:
        Total number of samples.
    test_fraction:
        Fraction of samples assigned to the test split.
    seed:
        RNG seed for the shuffle.
    stratify:
        Optional label vector; when given, each class is split separately so
        the class mix is preserved (the paper's 80/20 splits are stratified
        in effect because the survey data is large).
    """
    if not 0.0 < test_fraction < 1.0:
        raise ModelConfigError("test_fraction must be in (0, 1)")
    if num_samples <= 1:
        raise ModelConfigError("need at least two samples to split")
    rng = np.random.default_rng(seed)

    if stratify is None:
        order = rng.permutation(num_samples)
        cut = max(1, int(round(num_samples * test_fraction)))
        cut = min(cut, num_samples - 1)
        return np.sort(order[cut:]), np.sort(order[:cut])

    stratify = np.asarray(stratify)
    if stratify.shape[0] != num_samples:
        raise DimensionMismatchError(
            f"stratify has {stratify.shape[0]} entries for {num_samples} samples"
        )
    train_parts: list[np.ndarray] = []
    test_parts: list[np.ndarray] = []
    for label in np.unique(stratify):
        indices = np.flatnonzero(stratify == label)
        order = rng.permutation(indices)
        cut = int(round(len(indices) * test_fraction))
        if len(indices) > 1:
            cut = min(max(cut, 1), len(indices) - 1)
        test_parts.append(order[:cut])
        train_parts.append(order[cut:])
    return (
        np.sort(np.concatenate(train_parts)).astype(np.int64, copy=False),
        np.sort(np.concatenate(test_parts)).astype(np.int64, copy=False),
    )


def train_test_split(
    X: np.ndarray,
    y: np.ndarray,
    test_fraction: float = 0.2,
    seed: int | None = 0,
    stratify: bool = True,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Split ``(X, y)`` into ``(X_train, X_test, y_train, y_test)``."""
    X = np.asarray(X)
    y = np.asarray(y)
    if X.shape[0] != y.shape[0]:
        raise DimensionMismatchError(
            f"X and y disagree on sample count: {X.shape[0]} vs {y.shape[0]}"
        )
    train_idx, test_idx = train_test_split_indices(
        X.shape[0],
        test_fraction=test_fraction,
        seed=seed,
        stratify=y if stratify else None,
    )
    return X[train_idx], X[test_idx], y[train_idx], y[test_idx]


class StandardScaler:
    """Zero-mean unit-variance feature scaling (constant columns left as zero)."""

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "StandardScaler":
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise DimensionMismatchError(f"expected 2-D array, got shape {X.shape}")
        self.mean_ = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0.0] = 1.0
        self.scale_ = scale
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise NotFittedError(self)
        X = np.asarray(X, dtype=np.float64)
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)


class MinMaxScaler:
    """Scale each feature into [0, 1] (constant columns map to 0)."""

    def __init__(self) -> None:
        self.min_: np.ndarray | None = None
        self.range_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "MinMaxScaler":
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise DimensionMismatchError(f"expected 2-D array, got shape {X.shape}")
        self.min_ = X.min(axis=0)
        value_range = X.max(axis=0) - self.min_
        value_range[value_range == 0.0] = 1.0
        self.range_ = value_range
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.min_ is None or self.range_ is None:
            raise NotFittedError(self)
        X = np.asarray(X, dtype=np.float64)
        return (X - self.min_) / self.range_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)


def kfold_indices(
    num_samples: int, num_folds: int = 5, seed: int | None = 0
) -> list[tuple[np.ndarray, np.ndarray]]:
    """K-fold cross-validation index pairs ``(train_idx, val_idx)``."""
    if num_folds < 2:
        raise ModelConfigError("num_folds must be >= 2")
    if num_samples < num_folds:
        raise ModelConfigError("num_samples must be >= num_folds")
    rng = np.random.default_rng(seed)
    order = rng.permutation(num_samples)
    folds = np.array_split(order, num_folds)
    pairs: list[tuple[np.ndarray, np.ndarray]] = []
    for index in range(num_folds):
        val_idx = np.sort(folds[index])
        train_idx = np.sort(
            np.concatenate([folds[j] for j in range(num_folds) if j != index])
        )
        pairs.append((train_idx, val_idx))
    return pairs
