"""Array-backed kernels for the tree/GBDT model layer.

The node backend of :mod:`repro.ml.tree` walks one sample at a time through
``_TreeNode`` objects — an interpreter-bound loop repeated for every tree of
every boosting round.  This module flattens fitted trees into
struct-of-arrays *tensors* and answers every inference question with batched
level-wise traversal, mirroring the ``dict``/``csr`` kernel split of the
graph layer:

* :class:`TreeTensor` — one tree as parallel ``feature``/``threshold``/
  ``left``/``right``/``value``/``leaf_id`` arrays.  ``feature[i] < 0`` marks
  a leaf.  Traversal advances *all* rows one level per NumPy step, so a
  batch prediction costs ``O(depth)`` array ops instead of ``O(rows)``
  Python loops.
* :class:`ForestTensor` — every tree of a boosted ensemble concatenated into
  one node pool with per-tree root offsets.  One traversal sweep moves all
  ``rows x trees`` cursors together, so ``predict_raw``, ``apply`` and the
  leaf-value embedding of all rounds x classes are a single batched walk.
* :func:`best_split_array` — the exact greedy split search of
  :meth:`repro.ml.tree.GradientRegressionTree._best_split` with the inner
  position loop replaced by ``cumsum`` + masked-gain ``argmax`` per feature.

Parity contract: the array kernels execute the same float64 operations in
the same order as the node walks (per-position gain arithmetic, threshold
midpoints, sequential per-tree score accumulation), so fitted trees and all
predictions are **bit-identical** across backends — the randomized suite in
``tests/test_ml_forest.py`` arbitrates, exactly as the graph parity suites
do for Phases I and II.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ModelConfigError

ML_BACKENDS = ("auto", "node", "array", "hist")
"""Valid model-layer backends: pointer-based ``_TreeNode`` walks, flat NumPy
tensors with the exact vectorized split search, or the histogram split
search of :mod:`repro.ml.hist`.  ``auto`` picks between the exact array
kernels and the histogram search by row count (see
:func:`resolve_ml_backend`); unlike the graph layer's dict backend, the
whole ML substrate already requires NumPy, so ``"node"`` exists only as an
explicit reference/debugging choice."""

HIST_AUTO_MIN_ROWS = 4096
"""Row-count crossover for ``auto``: below this the exact array search is
kept (bit-identical splits, and the per-node ``argsort`` cost is modest),
at or above it ``auto`` prefers the ``O(rows + bins)`` histogram search —
the sort term dominates there and hist's threshold snapping is amortised
away by ``max_bins`` quantile bins.  The hist backend typically wins raw
fit speed well below this (~3x at ~1k rows, see ``BENCH_kernels.json``);
the crossover is deliberately conservative so ``auto`` trades exactness
for speed only where the win is decisive."""


def resolve_ml_backend(backend: str, num_rows: int | None = None) -> str:
    """Resolve an ML backend name to the concrete implementation to run.

    Mirrors :func:`repro.core.division.resolve_backend` in shape.  ``auto``
    resolves to the exact array kernels, unless the fitting row count is
    known (``num_rows``) and reaches :data:`HIST_AUTO_MIN_ROWS`, in which
    case the histogram split search takes over.
    """
    if backend not in ML_BACKENDS:
        raise ModelConfigError(
            f"unknown ml backend {backend!r}; available: {sorted(ML_BACKENDS)}"
        )
    if backend == "auto":
        if num_rows is not None and num_rows >= HIST_AUTO_MIN_ROWS:
            return "hist"
        return "array"
    return backend


class TreeTensor:
    """A fitted regression tree flattened to struct-of-arrays form.

    ``feature[i] >= 0`` marks an internal node splitting on that feature at
    ``threshold[i]`` with children ``left[i]``/``right[i]``; ``feature[i] < 0``
    marks a leaf carrying ``value[i]`` and ``leaf_id[i]``.  Slot 0 is always
    the root.
    """

    __slots__ = ("feature", "threshold", "left", "right", "value", "leaf_id")

    def __init__(
        self,
        feature: np.ndarray,
        threshold: np.ndarray,
        left: np.ndarray,
        right: np.ndarray,
        value: np.ndarray,
        leaf_id: np.ndarray,
    ) -> None:
        self.feature = feature
        self.threshold = threshold
        self.left = left
        self.right = right
        self.value = value
        self.leaf_id = leaf_id

    @classmethod
    def from_root(cls, root) -> "TreeTensor":
        """Flatten a ``_TreeNode`` tree (preorder, root at slot 0)."""
        order = []
        stack = [root]
        while stack:
            node = stack.pop()
            order.append(node)
            if node.feature is not None:
                stack.append(node.right)
                stack.append(node.left)
        slot = {id(node): position for position, node in enumerate(order)}
        count = len(order)
        feature = np.full(count, -1, dtype=np.int64)
        threshold = np.zeros(count, dtype=np.float64)
        left = np.zeros(count, dtype=np.int64)
        right = np.zeros(count, dtype=np.int64)
        value = np.zeros(count, dtype=np.float64)
        leaf_id = np.full(count, -1, dtype=np.int64)
        for position, node in enumerate(order):
            value[position] = node.value
            if node.feature is None:
                leaf_id[position] = node.leaf_id
            else:
                feature[position] = node.feature
                threshold[position] = node.threshold
                left[position] = slot[id(node.left)]
                right[position] = slot[id(node.right)]
        return cls(feature, threshold, left, right, value, leaf_id)

    @property
    def num_nodes(self) -> int:
        return int(self.feature.size)

    def leaf_slots(self, X: np.ndarray) -> np.ndarray:
        """Node-pool slot of the leaf each row of ``X`` falls into."""
        num_rows = X.shape[0]
        position = np.zeros(num_rows, dtype=np.int64)
        row_index = np.arange(num_rows)
        while True:
            feature = self.feature[position]
            internal = feature >= 0
            if not internal.any():
                return position
            x_value = X[row_index, np.where(internal, feature, 0)]
            go_left = x_value <= self.threshold[position]
            child = np.where(go_left, self.left[position], self.right[position])
            position = np.where(internal, child, position)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Leaf weight per row (batched twin of the node walk)."""
        return self.value[self.leaf_slots(X)]

    def apply(self, X: np.ndarray) -> np.ndarray:
        """Leaf index (0-based, per tree) per row."""
        return self.leaf_id[self.leaf_slots(X)]

    def depth(self) -> int:
        """Tree depth via a vectorized level sweep (no recursion)."""
        frontier = np.array([0], dtype=np.int64)
        depth = 0
        while True:
            internal = frontier[self.feature[frontier] >= 0]
            if internal.size == 0:
                return depth
            frontier = np.concatenate([self.left[internal], self.right[internal]])
            depth += 1


class ForestTensor:
    """All trees of a boosted ensemble packed into one stacked node pool.

    Tree ``t`` occupies slots ``indptr[t]:indptr[t + 1]`` with its root at
    ``indptr[t]``; ``left``/``right`` hold absolute pool slots, so one
    ``(rows, trees)`` cursor matrix traverses every tree of every round in
    lockstep.
    """

    __slots__ = ("feature", "threshold", "left", "right", "value", "leaf_id", "roots")

    def __init__(self, tensors: list[TreeTensor]) -> None:
        sizes = np.fromiter(
            (tensor.num_nodes for tensor in tensors), dtype=np.int64, count=len(tensors)
        )
        indptr = np.zeros(len(tensors) + 1, dtype=np.int64)
        np.cumsum(sizes, out=indptr[1:])
        self.roots = indptr[:-1]
        self.feature = np.concatenate([tensor.feature for tensor in tensors])
        self.threshold = np.concatenate([tensor.threshold for tensor in tensors])
        self.left = np.concatenate(
            [tensor.left + offset for tensor, offset in zip(tensors, self.roots)]
        )
        self.right = np.concatenate(
            [tensor.right + offset for tensor, offset in zip(tensors, self.roots)]
        )
        self.value = np.concatenate([tensor.value for tensor in tensors])
        self.leaf_id = np.concatenate([tensor.leaf_id for tensor in tensors])

    @classmethod
    def from_trees(cls, trees) -> "ForestTensor":
        """Stack fitted :class:`~repro.ml.tree.GradientRegressionTree` objects.

        ``trees`` is the flat round-major tree list (round 0's class trees,
        then round 1's, ...), matching the column order of the node backend's
        leaf embeddings.
        """
        return cls([tree.tensor() for tree in trees])

    @property
    def num_trees(self) -> int:
        return int(self.roots.size)

    def leaf_slots(self, X: np.ndarray) -> np.ndarray:
        """``(rows, trees)`` pool slots of the leaves all cursors land on."""
        num_rows = X.shape[0]
        position = np.broadcast_to(self.roots, (num_rows, self.num_trees)).copy()
        while True:
            feature = self.feature[position]
            internal = feature >= 0
            if not internal.any():
                return position
            x_value = np.take_along_axis(X, np.where(internal, feature, 0), axis=1)
            go_left = x_value <= self.threshold[position]
            child = np.where(go_left, self.left[position], self.right[position])
            position = np.where(internal, child, position)

    def leaf_values_matrix(self, X: np.ndarray) -> np.ndarray:
        """``(rows, trees)`` leaf-weight matrix — the LoCEC-XGB embedding."""
        return self.value[self.leaf_slots(X)]

    def leaf_indices_matrix(self, X: np.ndarray) -> np.ndarray:
        """``(rows, trees)`` leaf-index matrix (GBDT+LR style)."""
        return self.leaf_id[self.leaf_slots(X)]

    def decision_function(
        self,
        X: np.ndarray,
        base_score: np.ndarray,
        learning_rate: float,
        num_classes: int,
    ) -> np.ndarray:
        """Raw boosted scores from one traversal sweep.

        Per-tree contributions are accumulated sequentially in round-major
        order — the same float additions in the same order as the node
        backend's per-round loop, keeping the raw scores bit-identical.
        """
        values = self.leaf_values_matrix(X)
        raw = np.tile(base_score, (X.shape[0], 1))
        for tree_index in range(self.num_trees):
            raw[:, tree_index % num_classes] += learning_rate * values[:, tree_index]
        return raw


def best_split_array(
    X: np.ndarray,
    gradients: np.ndarray,
    hessians: np.ndarray,
    indices: np.ndarray,
    grad_sum: float,
    hess_sum: float,
    config,
) -> tuple[int, float, np.ndarray, np.ndarray] | None:
    """Vectorized exact greedy split search (array twin of ``_best_split``).

    Per feature: one mergesort ``argsort``, gradient/hessian ``cumsum``, the
    full gain vector in four elementwise ops, then a masked ``argmax`` —
    no Python loop over split positions.  The gain arithmetic matches the
    node backend's scalar loop term for term, and ``argmax`` returns the
    first position attaining the maximum exactly as the strict ``>`` scan
    does, so the chosen splits (and therefore the fitted trees) are
    bit-identical.
    """
    lam = config.reg_lambda
    parent_score = grad_sum * grad_sum / (hess_sum + lam)
    low = config.min_samples_leaf - 1
    high = indices.size - config.min_samples_leaf
    if high <= low:
        return None
    best_gain = config.min_gain
    best: tuple[int, float, np.ndarray, np.ndarray] | None = None

    for feature in range(X.shape[1]):
        values = X[indices, feature]
        order = np.argsort(values, kind="mergesort")
        sorted_idx = indices[order]
        sorted_values = values[order]
        grad_cum = np.cumsum(gradients[sorted_idx])
        hess_cum = np.cumsum(hessians[sorted_idx])

        grad_left = grad_cum[low:high]
        hess_left = hess_cum[low:high]
        grad_right = grad_sum - grad_left
        hess_right = hess_sum - hess_left
        gains = (
            0.5
            * (
                grad_left * grad_left / (hess_left + lam)
                + grad_right * grad_right / (hess_right + lam)
                - parent_score
            )
            - config.gamma
        )
        # Cannot split between equal feature values; NaN gains (possible only
        # with a zero-hessian, zero-lambda corner) lose every strict `>`
        # comparison on the node backend, so they are masked out identically.
        splittable = sorted_values[low:high] != sorted_values[low + 1 : high + 1]
        gains = np.where(splittable & ~np.isnan(gains), gains, -np.inf)
        offset = int(np.argmax(gains))
        gain = gains[offset]
        if gain > best_gain:
            position = low + offset
            threshold = 0.5 * (sorted_values[position] + sorted_values[position + 1])
            best_gain = gain
            best = (
                feature,
                float(threshold),
                sorted_idx[: position + 1],
                sorted_idx[position + 1 :],
            )
    return best
