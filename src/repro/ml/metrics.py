"""Classification metrics: precision / recall / F1 and report construction.

The paper evaluates every method with per-class precision, recall and
F1-score plus an "Overall" row (Tables IV and V).  The overall row in the
paper is the class-weighted (support-weighted) average of the per-class
values, which is what :func:`classification_report` computes by default.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import DimensionMismatchError
from repro.types import PRF, ClassificationReport, RelationType


def confusion_matrix(
    y_true: Sequence[int] | np.ndarray,
    y_pred: Sequence[int] | np.ndarray,
    num_classes: int,
) -> np.ndarray:
    """Confusion matrix ``M`` with ``M[i, j]`` = count of true ``i`` predicted ``j``."""
    y_true = np.asarray(y_true, dtype=np.int64)
    y_pred = np.asarray(y_pred, dtype=np.int64)
    if y_true.shape != y_pred.shape:
        raise DimensionMismatchError(
            f"y_true and y_pred shapes differ: {y_true.shape} vs {y_pred.shape}"
        )
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    for true, pred in zip(y_true, y_pred):
        matrix[true, pred] += 1
    return matrix


def precision_recall_f1(
    y_true: Sequence[int] | np.ndarray,
    y_pred: Sequence[int] | np.ndarray,
    label: int,
) -> PRF:
    """Precision, recall and F1 of a single class ``label``."""
    y_true = np.asarray(y_true, dtype=np.int64)
    y_pred = np.asarray(y_pred, dtype=np.int64)
    tp = int(np.sum((y_true == label) & (y_pred == label)))
    fp = int(np.sum((y_true != label) & (y_pred == label)))
    fn = int(np.sum((y_true == label) & (y_pred != label)))
    return PRF.from_counts(tp=tp, fp=fp, fn=fn)


def accuracy(y_true: Sequence[int] | np.ndarray, y_pred: Sequence[int] | np.ndarray) -> float:
    """Plain accuracy."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise DimensionMismatchError(
            f"y_true and y_pred shapes differ: {y_true.shape} vs {y_pred.shape}"
        )
    if y_true.size == 0:
        return 0.0
    return float(np.mean(y_true == y_pred))


def macro_f1(
    y_true: Sequence[int] | np.ndarray,
    y_pred: Sequence[int] | np.ndarray,
    labels: Sequence[int],
) -> float:
    """Unweighted mean of per-class F1 scores."""
    if not labels:
        return 0.0
    scores = [precision_recall_f1(y_true, y_pred, label).f1 for label in labels]
    return float(np.mean(scores))


def weighted_prf(
    y_true: Sequence[int] | np.ndarray,
    y_pred: Sequence[int] | np.ndarray,
    labels: Sequence[int],
) -> PRF:
    """Support-weighted average of per-class precision / recall / F1."""
    y_true = np.asarray(y_true, dtype=np.int64)
    supports = np.array([np.sum(y_true == label) for label in labels], dtype=np.float64)
    total = supports.sum()
    if total == 0:
        return PRF(0.0, 0.0, 0.0)
    per_class = [precision_recall_f1(y_true, y_pred, label) for label in labels]
    precision = float(sum(s * p.precision for s, p in zip(supports, per_class)) / total)
    recall = float(sum(s * p.recall for s, p in zip(supports, per_class)) / total)
    f1 = float(sum(s * p.f1 for s, p in zip(supports, per_class)) / total)
    return PRF(precision=precision, recall=recall, f1=f1)


def classification_report(
    y_true: Sequence[int] | np.ndarray,
    y_pred: Sequence[int] | np.ndarray,
    labels: Sequence[RelationType] = RelationType.classification_targets(),
) -> ClassificationReport:
    """Build the per-class + overall report used in Tables IV and V."""
    per_class = {
        label: precision_recall_f1(y_true, y_pred, int(label)) for label in labels
    }
    overall = weighted_prf(y_true, y_pred, [int(label) for label in labels])
    return ClassificationReport(per_class=per_class, overall=overall)


def format_report(report: ClassificationReport, algorithm: str = "") -> str:
    """Render a report as an aligned text table matching the paper layout."""
    header = f"{'Algorithm':<12} {'Community Type':<16} {'Precision':>9} {'Recall':>7} {'F1-score':>9}"
    lines = [header, "-" * len(header)]
    for name, precision, recall, f1 in report.as_rows():
        lines.append(
            f"{algorithm:<12} {name:<16} {precision:>9.3f} {recall:>7.3f} {f1:>9.3f}"
        )
    return "\n".join(lines)
