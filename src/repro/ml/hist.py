"""Histogram-based GBDT split search (``backend="hist"``).

:func:`repro.ml.forest.best_split_array` made the exact greedy search
array-fast, but it still pays a per-node, per-feature mergesort ``argsort``
— ``O(rows * log rows)`` for every node of every tree of every boosting
round.  This module removes the sort from the per-node path entirely, the
way LightGBM/XGBoost-hist do:

* :class:`BinnedDataset` — built **once per fit**: each feature column is
  quantized into at most ``max_bins`` ordered bins (one bin per distinct
  value when the column has ``<= max_bins`` of them, quantile-spaced edges
  otherwise), and the whole matrix is re-expressed as integer bin codes.
* :class:`HistTreeGrower` — grows a tree on the codes.  A node's split
  search is one flattened ``np.bincount`` accumulation of gradient /
  hessian / count histograms over all features, a ``cumsum`` per feature,
  and one masked-gain ``argmax`` over bin boundaries: ``O(rows + bins)``
  per feature instead of ``O(rows * log rows)``.
* **Parent-minus-sibling subtraction** — when a node splits, only the
  *smaller* child's histogram is ever accumulated from rows; the larger
  child's is the parent's histogram minus the sibling's, so the total
  accumulation work per tree level is halved.

Exactness contract (the hist twin of the bit-parity suites): whenever a
feature has at most ``max_bins`` distinct values it is binned *exactly* —
one bin per distinct value, candidate thresholds computed as the same
``0.5 * (lo + hi)`` midpoints between the node's adjacent present values
that the exact search uses.  In that regime the chosen splits (feature,
threshold, and row partition) are **identical** to
:func:`~repro.ml.forest.best_split_array`; only the cumulative float sums
behind the gains are associated differently (per-bin partial sums instead
of a row-ordered ``cumsum``), which perturbs gains and leaf values at the
last-ulp level but never the argmax on non-degenerate data.
``tests/test_ml_hist.py`` arbitrates, in the same style as
``tests/test_ml_forest.py`` does for the array backend.

Above ``max_bins`` distinct values the search becomes approximate: split
thresholds snap to quantile bin edges (the classic hist-vs-exact
tradeoff), which is what buys the speed at scale.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ModelConfigError


class BinnedDataset:
    """A feature matrix quantized to integer bin codes, built once per fit.

    Attributes
    ----------
    codes:
        ``(rows, features)`` int64 bin code per value.  Codes are ordered:
        ``code(u) <= code(v)`` iff ``u <= v`` within a feature, so a split
        "``code <= b``" is a split "``value <= threshold(b)``".
    num_bins:
        Bins actually used per feature (``<= max_bins``).
    exact:
        Per-feature flag: ``True`` when the feature had ``<= max_bins``
        distinct values and is binned one-bin-per-value (exactness regime).
    bin_values:
        Per exact feature, the sorted distinct values (one per bin);
        ``None`` for quantile features.
    edges:
        Per quantile feature, the ascending cut points (``num_bins - 1`` of
        them); ``code(v) = #{edges < v}``, so rows with ``v <= edges[b]``
        are exactly the rows with ``code <= b``.  ``None`` for exact
        features.
    """

    __slots__ = ("codes", "num_bins", "exact", "bin_values", "edges", "max_bins")

    def __init__(
        self,
        codes: np.ndarray,
        num_bins: np.ndarray,
        exact: np.ndarray,
        bin_values: list[np.ndarray | None],
        edges: list[np.ndarray | None],
        max_bins: int,
    ) -> None:
        self.codes = codes
        self.num_bins = num_bins
        self.exact = exact
        self.bin_values = bin_values
        self.edges = edges
        self.max_bins = max_bins

    @classmethod
    def from_matrix(cls, X: np.ndarray, max_bins: int = 256) -> "BinnedDataset":
        """Quantize every column of ``X`` into at most ``max_bins`` bins."""
        if max_bins < 2:
            raise ModelConfigError("max_bins must be >= 2")
        X = np.asarray(X, dtype=np.float64)
        num_rows, num_features = X.shape
        codes = np.empty((num_rows, num_features), dtype=np.int64)
        num_bins = np.empty(num_features, dtype=np.int64)
        exact = np.empty(num_features, dtype=bool)
        bin_values: list[np.ndarray | None] = []
        edges: list[np.ndarray | None] = []
        for feature in range(num_features):
            column = X[:, feature]
            distinct = np.unique(column)
            if distinct.size <= max_bins:
                # One bin per distinct value: searchsorted maps each value to
                # its rank among the distinct values.
                codes[:, feature] = np.searchsorted(distinct, column)
                num_bins[feature] = distinct.size
                exact[feature] = True
                bin_values.append(distinct)
                edges.append(None)
            else:
                # Quantile-spaced cut points over the raw column; duplicates
                # collapse so every boundary separates at least one value.
                quantiles = np.linspace(0.0, 1.0, max_bins + 1)[1:-1]
                cuts = np.unique(np.quantile(column, quantiles))
                # side="left": code(v) = #{cuts < v}, so "code <= b" is
                # exactly "v <= cuts[b]" — the inference rule `x <= threshold
                # goes left` partitions training rows identically.
                codes[:, feature] = np.searchsorted(cuts, column, side="left")
                num_bins[feature] = cuts.size + 1
                exact[feature] = False
                bin_values.append(None)
                edges.append(cuts)
        return cls(codes, num_bins, exact, bin_values, edges, max_bins)

    @property
    def num_features(self) -> int:
        return int(self.num_bins.size)

    @property
    def hist_width(self) -> int:
        """Histogram row width: the widest feature's bin count."""
        return int(self.num_bins.max())

    def subset(self, row_indices: np.ndarray) -> "BinnedDataset":
        """A row subset for subsampled trees: the codes are a fancy-index
        *copy* of the selected rows (one ``(rows, features)`` int64
        allocation per call); only the bin metadata is shared."""
        return BinnedDataset(
            self.codes[row_indices],
            self.num_bins,
            self.exact,
            self.bin_values,
            self.edges,
            self.max_bins,
        )

    def boundary_threshold(
        self, feature: int, boundary: int, counts: np.ndarray
    ) -> float:
        """The real-valued threshold for splitting ``feature`` after bin
        ``boundary`` in a node whose per-bin row counts are ``counts``.

        Exact features reproduce the exact search's threshold arithmetic:
        the midpoint between the node's largest present value left of the
        boundary and its smallest present value right of it (present = the
        node's count histogram is non-zero there — a deeper node may skip
        values, so the global bin edges would give a different, though
        equivalent, cut).  Quantile features use the bin edge, which is the
        only threshold known to separate the two code ranges.
        """
        if not self.exact[feature]:
            cuts = self.edges[feature]
            assert cuts is not None
            return float(cuts[boundary])
        values = self.bin_values[feature]
        assert values is not None
        present = np.flatnonzero(counts[: self.num_bins[feature]] > 0)
        lo = present[present <= boundary].max()
        hi = present[present > boundary].min()
        return float(0.5 * (values[lo] + values[hi]))


class HistTreeGrower:
    """Grows one regression tree with histogram split search.

    Mirrors :meth:`repro.ml.tree.GradientRegressionTree._build` exactly —
    same stopping rules, same leaf-id numbering (left-first DFS), same leaf
    weights, same gain formula, same first-strict-maximum tie-breaking —
    with the per-node sort replaced by histogram accumulation and
    parent-minus-sibling subtraction.
    """

    def __init__(
        self,
        binned: BinnedDataset,
        gradients: np.ndarray,
        hessians: np.ndarray,
        config,
    ) -> None:
        self.binned = binned
        self.gradients = gradients
        self.hessians = hessians
        self.config = config
        width = binned.hist_width
        self._width = width
        self._offsets = np.arange(binned.num_features, dtype=np.int64) * width
        self._total = binned.num_features * width
        # boundary b of feature f is a real boundary only while b < bins - 1.
        self._boundary_ok = (
            np.arange(width - 1)[None, :] < (binned.num_bins - 1)[:, None]
        )

    # ------------------------------------------------------------- histograms
    def _accumulate(
        self, indices: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Count/gradient/hessian histograms of ``indices``, all features at
        once via one flattened ``bincount`` per statistic."""
        codes = self.binned.codes[indices]
        flat = (codes + self._offsets).ravel()
        shape = (self.binned.num_features, self._width)
        counts = np.bincount(flat, minlength=self._total).reshape(shape)
        grad_weights = np.broadcast_to(
            self.gradients[indices][:, None], codes.shape
        ).ravel()
        hess_weights = np.broadcast_to(
            self.hessians[indices][:, None], codes.shape
        ).ravel()
        grads = np.bincount(flat, weights=grad_weights, minlength=self._total)
        hessians = np.bincount(flat, weights=hess_weights, minlength=self._total)
        return counts, grads.reshape(shape), hessians.reshape(shape)

    # ------------------------------------------------------------ split search
    def _best_split(
        self,
        hist: tuple[np.ndarray, np.ndarray, np.ndarray],
        grad_sum: float,
        hess_sum: float,
        num_rows: int,
    ) -> tuple[int, int] | None:
        """Best ``(feature, boundary)`` over all bin boundaries, or ``None``.

        The gain arithmetic matches the exact search term for term; the flat
        row-major ``argmax`` picks the first boundary of the first feature
        attaining the maximum, exactly like the exact search's sequential
        strict-``>`` scan.
        """
        if self._width < 2:
            return None  # every feature is constant: no boundary exists
        counts, grads, hessians = hist
        config = self.config
        lam = config.reg_lambda
        parent_score = grad_sum * grad_sum / (hess_sum + lam)
        count_left = np.cumsum(counts, axis=1)[:, :-1]
        grad_left = np.cumsum(grads, axis=1)[:, :-1]
        hess_left = np.cumsum(hessians, axis=1)[:, :-1]
        grad_right = grad_sum - grad_left
        hess_right = hess_sum - hess_left
        with np.errstate(invalid="ignore", divide="ignore"):
            gains = (
                0.5
                * (
                    grad_left * grad_left / (hess_left + lam)
                    + grad_right * grad_right / (hess_right + lam)
                    - parent_score
                )
                - config.gamma
            )
        valid = (
            self._boundary_ok
            & (count_left >= config.min_samples_leaf)
            & (num_rows - count_left >= config.min_samples_leaf)
        )
        # NaN gains (zero-hessian, zero-lambda corner) lose every strict `>`
        # comparison on the exact backends; mask them out identically.
        gains = np.where(valid & ~np.isnan(gains), gains, -np.inf)
        flat_best = int(np.argmax(gains))
        gain = gains.ravel()[flat_best]
        if not gain > config.min_gain:
            return None
        feature, boundary = divmod(flat_best, self._width - 1)
        return feature, boundary

    # ----------------------------------------------------------------- growth
    def grow(self, tree, indices: np.ndarray):
        """Grow and return the root ``_TreeNode`` (leaf ids via ``tree``)."""
        return self._build(tree, indices, depth=0, hist=None)

    def _build(self, tree, indices: np.ndarray, depth: int, hist):
        from repro.ml.tree import _TreeNode

        config = self.config
        node = _TreeNode(depth=depth)
        grad_sum = self.gradients[indices].sum()
        hess_sum = self.hessians[indices].sum()
        node.value = tree._leaf_weight(grad_sum, hess_sum)

        if depth >= config.max_depth or indices.size < 2 * config.min_samples_leaf:
            return tree._finalise_leaf(node)

        if hist is None:
            hist = self._accumulate(indices)
        split = self._best_split(hist, grad_sum, hess_sum, indices.size)
        if split is None:
            return tree._finalise_leaf(node)

        feature, boundary = split
        node.feature = feature
        node.threshold = self.binned.boundary_threshold(
            feature, boundary, hist[0][feature]
        )
        go_left = self.binned.codes[indices, feature] <= boundary
        left_idx = indices[go_left]
        right_idx = indices[~go_left]

        # Parent-minus-sibling: accumulate only the smaller child (and only
        # when a child will actually search — a to-be leaf needs no histogram).
        def needs_hist(child_indices: np.ndarray) -> bool:
            return (
                depth + 1 < config.max_depth
                and child_indices.size >= 2 * config.min_samples_leaf
            )

        left_hist = right_hist = None
        need_left, need_right = needs_hist(left_idx), needs_hist(right_idx)
        if need_left or need_right:
            left_is_small = left_idx.size <= right_idx.size
            small_idx = left_idx if left_is_small else right_idx
            small_hist = self._accumulate(small_idx)
            big_hist = tuple(parent - small for parent, small in zip(hist, small_hist))
            left_hist, right_hist = (
                (small_hist, big_hist) if left_is_small else (big_hist, small_hist)
            )
            if not need_left:
                left_hist = None
            if not need_right:
                right_hist = None

        node.left = self._build(tree, left_idx, depth + 1, left_hist)
        node.right = self._build(tree, right_idx, depth + 1, right_hist)
        return node
