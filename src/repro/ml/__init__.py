"""From-scratch machine-learning substrate (GBDT, logistic regression, CNN, metrics)."""

from repro.ml.base import Classifier, one_hot, softmax
from repro.ml.forest import (
    HIST_AUTO_MIN_ROWS,
    ML_BACKENDS,
    ForestTensor,
    TreeTensor,
    resolve_ml_backend,
)
from repro.ml.gbdt import GradientBoostedClassifier
from repro.ml.hist import BinnedDataset, HistTreeGrower
from repro.ml.logistic import LogisticRegression
from repro.ml.metrics import (
    accuracy,
    classification_report,
    confusion_matrix,
    format_report,
    macro_f1,
    precision_recall_f1,
    weighted_prf,
)
from repro.ml.preprocessing import (
    MinMaxScaler,
    StandardScaler,
    kfold_indices,
    train_test_split,
    train_test_split_indices,
)
from repro.ml.tree import GradientRegressionTree, RegressionTreeConfig

__all__ = [
    "Classifier",
    "softmax",
    "one_hot",
    "LogisticRegression",
    "GradientBoostedClassifier",
    "GradientRegressionTree",
    "RegressionTreeConfig",
    "ML_BACKENDS",
    "HIST_AUTO_MIN_ROWS",
    "ForestTensor",
    "TreeTensor",
    "BinnedDataset",
    "HistTreeGrower",
    "resolve_ml_backend",
    "accuracy",
    "classification_report",
    "confusion_matrix",
    "format_report",
    "macro_f1",
    "precision_recall_f1",
    "weighted_prf",
    "StandardScaler",
    "MinMaxScaler",
    "train_test_split",
    "train_test_split_indices",
    "kfold_indices",
]
