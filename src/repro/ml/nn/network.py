"""Model containers: Sequential stacks, parallel branches and a trainer.

CommCNN (Figure 8 of the paper) is a multi-branch network: the input feature
matrix flows through three convolution branches (square / wide / long) whose
outputs are flattened, concatenated and passed to fully connected layers.
:class:`Sequential` models a linear stack, :class:`ParallelConcat` models the
branch-and-concatenate pattern, and :class:`NeuralNetworkClassifier` wraps a
model with the softmax-cross-entropy loss, mini-batch Adam training and the
common ``fit`` / ``predict_proba`` / ``predict`` protocol.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ModelConfigError
from repro.ml.base import check_fitted
from repro.ml.nn.layers import Layer
from repro.ml.nn.losses import SoftmaxCrossEntropy
from repro.ml.nn.optimizers import Adam, Optimizer


class Sequential(Layer):
    """A linear stack of layers."""

    def __init__(self, layers: list[Layer]) -> None:
        self.layers = list(layers)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out = x
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = grad_output
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def parameters(self) -> list[tuple[str, np.ndarray, np.ndarray]]:
        collected: list[tuple[str, np.ndarray, np.ndarray]] = []
        for index, layer in enumerate(self.layers):
            for name, param, grad in layer.parameters():
                collected.append((f"layer{index}.{name}", param, grad))
        return collected

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(repr(layer) for layer in self.layers)
        return f"Sequential([{inner}])"


class ParallelConcat(Layer):
    """Run branches on the same input and concatenate their 2-D outputs.

    Every branch must produce a 2-D ``(N, d_i)`` output (use ``Flatten`` or a
    global pooling layer at the end of each branch); the concatenated output
    has shape ``(N, sum_i d_i)``.
    """

    def __init__(self, branches: list[Layer]) -> None:
        if not branches:
            raise ModelConfigError("ParallelConcat needs at least one branch")
        self.branches = list(branches)
        self._split_sizes: list[int] | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        outputs = [branch.forward(x, training=training) for branch in self.branches]
        for out in outputs:
            if out.ndim != 2:
                raise ModelConfigError(
                    "every ParallelConcat branch must emit a 2-D output; "
                    f"got shape {out.shape}"
                )
        self._split_sizes = [out.shape[1] for out in outputs]
        return np.concatenate(outputs, axis=1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        assert self._split_sizes is not None
        grads = np.split(grad_output, np.cumsum(self._split_sizes)[:-1], axis=1)
        total: np.ndarray | None = None
        for branch, grad in zip(self.branches, grads):
            branch_grad = branch.backward(grad)
            total = branch_grad if total is None else total + branch_grad
        assert total is not None
        return total

    def parameters(self) -> list[tuple[str, np.ndarray, np.ndarray]]:
        collected: list[tuple[str, np.ndarray, np.ndarray]] = []
        for index, branch in enumerate(self.branches):
            for name, param, grad in branch.parameters():
                collected.append((f"branch{index}.{name}", param, grad))
        return collected


class NeuralNetworkClassifier:
    """Trainable classifier around a network emitting class logits.

    Parameters
    ----------
    model:
        A :class:`Layer` (usually :class:`Sequential`) whose output is a
        ``(N, num_classes)`` logits matrix.
    num_classes:
        Number of classes (for validation of the output width).
    epochs, batch_size, learning_rate:
        Mini-batch Adam training schedule.
    seed:
        Seed controlling the shuffling of mini-batches.
    optimizer:
        Optional custom optimiser instance; default is Adam.
    """

    def __init__(
        self,
        model: Layer,
        num_classes: int,
        epochs: int = 30,
        batch_size: int = 32,
        learning_rate: float = 1e-3,
        seed: int = 0,
        optimizer: Optimizer | None = None,
    ) -> None:
        if num_classes < 2:
            raise ModelConfigError("need at least two classes")
        if epochs < 1 or batch_size < 1:
            raise ModelConfigError("epochs and batch_size must be positive")
        self.model = model
        self.num_classes = num_classes
        self.epochs = epochs
        self.batch_size = batch_size
        self.seed = seed
        self.optimizer = optimizer or Adam(learning_rate=learning_rate)
        self.loss = SoftmaxCrossEntropy()
        self.loss_history_: list[float] | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "NeuralNetworkClassifier":
        """Train on ``X`` (any shape with leading sample axis) and labels ``y``."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        if X.shape[0] != y.shape[0]:
            raise ModelConfigError(
                f"X and y disagree on sample count: {X.shape[0]} vs {y.shape[0]}"
            )
        n_samples = X.shape[0]
        rng = np.random.default_rng(self.seed)
        self.loss_history_ = []

        for _ in range(self.epochs):
            order = rng.permutation(n_samples)
            epoch_loss = 0.0
            num_batches = 0
            for start in range(0, n_samples, self.batch_size):
                batch_idx = order[start : start + self.batch_size]
                logits = self.model.forward(X[batch_idx], training=True)
                if logits.shape[1] != self.num_classes:
                    raise ModelConfigError(
                        f"model emits {logits.shape[1]} logits, "
                        f"expected {self.num_classes}"
                    )
                batch_loss = self.loss.forward(logits, y[batch_idx])
                grad = self.loss.backward()
                self.model.backward(grad)
                self.optimizer.step(self.model.parameters())
                epoch_loss += batch_loss
                num_batches += 1
            self.loss_history_.append(epoch_loss / max(num_batches, 1))
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Class-probability matrix of shape ``(n_samples, num_classes)``."""
        check_fitted(self, "loss_history_")
        X = np.asarray(X, dtype=np.float64)
        logits = self.model.forward(X, training=False)
        return SoftmaxCrossEntropy.probabilities(logits)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted class index for each sample."""
        return np.argmax(self.predict_proba(X), axis=1)

    def num_parameters(self) -> int:
        """Total number of trainable scalars in the model."""
        return int(sum(param.size for _, param, _ in self.model.parameters()))
