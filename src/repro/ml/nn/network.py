"""Model containers: Sequential stacks, parallel branches and a trainer.

CommCNN (Figure 8 of the paper) is a multi-branch network: the input feature
matrix flows through three convolution branches (square / wide / long) whose
outputs are flattened, concatenated and passed to fully connected layers.
:class:`Sequential` models a linear stack, :class:`ParallelConcat` models the
branch-and-concatenate pattern, and :class:`NeuralNetworkClassifier` wraps a
model with the softmax-cross-entropy loss, mini-batch Adam training and the
common ``fit`` / ``predict_proba`` / ``predict`` protocol.

The classifier executes on one of two backends (``backend="loop"|"fused"|
"auto"``): the layer-by-layer object graph defined here, or the compiled
tape of :mod:`repro.ml.nn.engine`.  Both run the same float operations in
the same order, so logits, fitted weights and loss histories are
bit-identical; ``"auto"`` picks the fused engine whenever the model compiles
(every CommCNN does) and falls back to the loop otherwise.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ModelConfigError, TrainingDivergedError
from repro.ml.base import check_fitted
from repro.ml.nn.layers import Layer
from repro.ml.nn.losses import SoftmaxCrossEntropy
from repro.ml.nn.optimizers import Adam, Optimizer

#: Valid values of the ``backend`` knob on :class:`NeuralNetworkClassifier`.
NN_BACKENDS = ("auto", "loop", "fused")


class Sequential(Layer):
    """A linear stack of layers."""

    def __init__(self, layers: list[Layer]) -> None:
        self.layers = list(layers)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out = x
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = grad_output
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def parameters(self) -> list[tuple[str, np.ndarray, np.ndarray]]:
        collected: list[tuple[str, np.ndarray, np.ndarray]] = []
        for index, layer in enumerate(self.layers):
            for name, param, grad in layer.parameters():
                collected.append((f"layer{index}.{name}", param, grad))
        return collected

    def clear_caches(self) -> None:
        for layer in self.layers:
            layer.clear_caches()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(repr(layer) for layer in self.layers)
        return f"Sequential([{inner}])"


class ParallelConcat(Layer):
    """Run branches on the same input and concatenate their 2-D outputs.

    Every branch must produce a 2-D ``(N, d_i)`` output (use ``Flatten`` or a
    global pooling layer at the end of each branch); the concatenated output
    has shape ``(N, sum_i d_i)``.
    """

    def __init__(self, branches: list[Layer]) -> None:
        if not branches:
            raise ModelConfigError("ParallelConcat needs at least one branch")
        self.branches = list(branches)
        self._split_sizes: list[int] | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        outputs = [branch.forward(x, training=training) for branch in self.branches]
        for out in outputs:
            if out.ndim != 2:
                raise ModelConfigError(
                    "every ParallelConcat branch must emit a 2-D output; "
                    f"got shape {out.shape}"
                )
        self._split_sizes = [out.shape[1] for out in outputs]
        return np.concatenate(outputs, axis=1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        assert self._split_sizes is not None
        grads = np.split(grad_output, np.cumsum(self._split_sizes)[:-1], axis=1)
        total: np.ndarray | None = None
        for branch, grad in zip(self.branches, grads):
            branch_grad = branch.backward(grad)
            total = branch_grad if total is None else total + branch_grad
        assert total is not None
        return total

    def parameters(self) -> list[tuple[str, np.ndarray, np.ndarray]]:
        collected: list[tuple[str, np.ndarray, np.ndarray]] = []
        for index, branch in enumerate(self.branches):
            for name, param, grad in branch.parameters():
                collected.append((f"branch{index}.{name}", param, grad))
        return collected

    def clear_caches(self) -> None:
        self._split_sizes = None
        for branch in self.branches:
            branch.clear_caches()


class NeuralNetworkClassifier:
    """Trainable classifier around a network emitting class logits.

    Parameters
    ----------
    model:
        A :class:`Layer` (usually :class:`Sequential`) whose output is a
        ``(N, num_classes)`` logits matrix.
    num_classes:
        Number of classes (for validation of the output width).
    epochs, batch_size, learning_rate:
        Mini-batch Adam training schedule.
    seed:
        Seed controlling the shuffling of mini-batches.
    optimizer:
        Optional custom optimiser instance; default is Adam.
    backend:
        Execution backend: ``"loop"`` walks the layer object graph,
        ``"fused"`` compiles the model into the flat tape of
        :mod:`repro.ml.nn.engine` (bit-identical, several times faster on
        CommCNN-sized models), ``"auto"`` (default) tries the fused engine
        and falls back to the loop when the model contains a layer the
        engine cannot compile.
    """

    def __init__(
        self,
        model: Layer,
        num_classes: int,
        epochs: int = 30,
        batch_size: int = 32,
        learning_rate: float = 1e-3,
        seed: int = 0,
        optimizer: Optimizer | None = None,
        backend: str = "auto",
    ) -> None:
        if num_classes < 2:
            raise ModelConfigError("need at least two classes")
        if epochs < 1 or batch_size < 1:
            raise ModelConfigError("epochs and batch_size must be positive")
        if backend not in NN_BACKENDS:
            raise ModelConfigError(
                f"backend must be one of {NN_BACKENDS}, got {backend!r}"
            )
        self.model = model
        self.num_classes = num_classes
        self.epochs = epochs
        self.batch_size = batch_size
        self.seed = seed
        self.optimizer = optimizer or Adam(learning_rate=learning_rate)
        self.loss = SoftmaxCrossEntropy()
        self.backend = backend
        self.loss_history_: list[float] | None = None
        self.backend_used_: str | None = None
        self._engine = None

    def _compile_engine(self, input_shape: tuple[int, ...]):
        """Engine for ``input_shape`` per the backend knob (None → loop)."""
        if self.backend == "loop":
            return None
        from repro.ml.nn.engine import CompiledNetwork, EngineCompileError

        try:
            return CompiledNetwork(self.model, input_shape, self.num_classes)
        except EngineCompileError:
            if self.backend == "fused":
                raise
            return None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "NeuralNetworkClassifier":
        """Train on ``X`` (any shape with leading sample axis) and labels ``y``."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        if X.shape[0] != y.shape[0]:
            raise ModelConfigError(
                f"X and y disagree on sample count: {X.shape[0]} vs {y.shape[0]}"
            )
        # Reset fitted state up front: a fit that raises (e.g.
        # TrainingDivergedError) must leave the classifier reporting
        # not-fitted rather than serving a half-trained model.
        self.loss_history_ = None
        self.backend_used_ = None
        self._engine = None

        engine = self._compile_engine(X.shape[1:])
        if engine is not None:
            history = engine.train(
                X,
                y,
                epochs=self.epochs,
                batch_size=self.batch_size,
                seed=self.seed,
                optimizer=self.optimizer,
                loss=self.loss,
            )
            self._engine = engine
            self.backend_used_ = "fused"
        else:
            history = self._fit_loop(X, y)
            self.backend_used_ = "loop"
        self.loss_history_ = history
        self.model.clear_caches()
        return self

    def _fit_loop(self, X: np.ndarray, y: np.ndarray) -> list[float]:
        """Layer-by-layer reference training loop."""
        n_samples = X.shape[0]
        rng = np.random.default_rng(self.seed)
        history: list[float] = []
        for epoch in range(self.epochs):
            order = rng.permutation(n_samples)
            epoch_loss = 0.0
            num_batches = 0
            for start in range(0, n_samples, self.batch_size):
                batch_idx = order[start : start + self.batch_size]
                logits = self.model.forward(X[batch_idx], training=True)
                if logits.shape[1] != self.num_classes:
                    raise ModelConfigError(
                        f"model emits {logits.shape[1]} logits, "
                        f"expected {self.num_classes}"
                    )
                batch_loss = self.loss.forward(logits, y[batch_idx])
                if not np.isfinite(batch_loss):
                    raise TrainingDivergedError(
                        f"non-finite batch loss ({batch_loss}) in epoch "
                        f"{epoch + 1} of {self.epochs}; lower the learning "
                        "rate or check the inputs for non-finite values"
                    )
                grad = self.loss.backward()
                self.model.backward(grad)
                self.optimizer.step(self.model.parameters())
                epoch_loss += batch_loss
                num_batches += 1
            history.append(epoch_loss / max(num_batches, 1))
        return history

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Class-probability matrix of shape ``(n_samples, num_classes)``."""
        check_fitted(self, "loss_history_")
        X = np.asarray(X, dtype=np.float64)
        if self._engine is not None:
            logits = self._engine.forward(X)
        else:
            logits = self.model.forward(X, training=False)
        return SoftmaxCrossEntropy.probabilities(logits)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted class index for each sample."""
        return np.argmax(self.predict_proba(X), axis=1)

    def num_parameters(self) -> int:
        """Total number of trainable scalars in the model."""
        return int(sum(param.size for _, param, _ in self.model.parameters()))
