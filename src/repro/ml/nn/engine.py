"""Compiled execution engine for the NumPy NN stack (the ``"fused"`` backend).

:class:`CompiledNetwork` compiles a built :class:`~repro.ml.nn.network.
Sequential` / :class:`~repro.ml.nn.network.ParallelConcat` model into a flat
tape of shape-specialised array ops:

* every ``Conv2D`` gets a precomputed im2col gather-index plan, so a forward
  pass is one ``np.take`` plus one batched 2-D GEMM and a backward pass is
  two GEMMs plus one ``np.bincount`` scatter-add — no Python loops over
  kernel positions;
* all activations, gradients and im2col workspaces are preallocated once and
  reused across the fixed-shape mini-batches of an epoch (ragged last
  batches run on leading-axis views of the same buffers);
* all parameters, gradients and Adam/SGD optimiser state live in single
  contiguous vectors, so an optimiser step is a handful of whole-vector ops
  with one shared timestep instead of a Python walk over parameter tensors.

The engine performs the *same float operations in the same order* as the
layer-by-layer loop backend — the GEMM/scatter primitives are shared with
:mod:`repro.ml.nn.layers`, the mini-batch shuffling and dropout masks use
the same generators, and accumulation orders are preserved — so logits,
fitted weights and loss histories are bit-identical between the two
backends (arbitrated by ``tests/test_nn_engine.py``).

Models containing layer types the engine does not know are rejected at
compile time with :class:`EngineCompileError`;
``NeuralNetworkClassifier(backend="auto")`` catches it and falls back to the
loop backend.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import (
    DimensionMismatchError,
    ModelConfigError,
    TrainingDivergedError,
)
from repro.ml.nn.layers import (
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    GlobalMaxPool2D,
    MaxPool2D,
    ReLU,
    conv_forward_gemm,
    conv_grad_cols,
    conv_grad_weight,
    conv_im2col_indices,
)
from repro.ml.nn.optimizers import SGD, Adam, Optimizer


class EngineCompileError(ModelConfigError):
    """The fused engine cannot compile this model (unsupported layer/shape)."""


# ----------------------------------------------------------------- workspaces
class _Slot:
    """A preallocated ``(capacity, *shape)`` workspace, grown on demand.

    ``training_only`` slots (gradients, argmax caches, dropout masks, GEMM
    scratch) are sized to the training batch only; inference-driven capacity
    growth leaves them untouched so a large ``predict`` batch does not
    allocate backward-pass mirrors of every activation.
    """

    __slots__ = ("shape", "dtype", "array", "training_only")

    def __init__(
        self, shape: tuple[int, ...], dtype=np.float64, training_only: bool = False
    ) -> None:
        self.shape = tuple(int(s) for s in shape)
        self.dtype = dtype
        self.training_only = training_only
        self.array: np.ndarray | None = None

    def view(self, n: int) -> np.ndarray:
        return self.array[:n]


class _ViewSlot:
    """A reshaped alias of another slot (e.g. ``Flatten``); no storage."""

    __slots__ = ("base", "shape")

    def __init__(self, base, shape: tuple[int, ...]) -> None:
        self.base = base
        self.shape = tuple(int(s) for s in shape)

    def view(self, n: int) -> np.ndarray:
        return self.base.view(n).reshape((n,) + self.shape)


# ------------------------------------------------------------------- tape ops
class _ConvOp:
    """``Conv2D`` as gather + GEMM forward, GEMM + bincount-scatter backward."""

    def __init__(
        self,
        engine: "CompiledNetwork",
        layer: Conv2D,
        in_slot,
        in_grad,
        in_shape: tuple[int, int, int],
        needs_input_grad: bool,
    ) -> None:
        channels, height, width = in_shape
        if channels != layer.in_channels:
            raise EngineCompileError(
                f"Conv2D expects {layer.in_channels} input channels, got {channels}"
            )
        if height < layer.kernel_h or width < layer.kernel_w:
            raise EngineCompileError(
                f"input {height}x{width} smaller than kernel "
                f"{layer.kernel_h}x{layer.kernel_w}"
            )
        self.in_slot = in_slot
        self.in_grad = in_grad
        self.needs_input_grad = needs_input_grad
        self.flat_size = channels * height * width
        self.out_h = height - layer.kernel_h + 1
        self.out_w = width - layer.kernel_w + 1
        positions = self.out_h * self.out_w
        k = channels * layer.kernel_h * layer.kernel_w
        # A 1x1 kernel's im2col is the identity: columns are exactly the
        # flattened input, so the gather (and the backward scatter) collapse
        # to reshaped views of the input (and its gradient) buffers.
        self.identity_cols = layer.kernel_h == 1 and layer.kernel_w == 1
        self.gather_idx = conv_im2col_indices(
            channels, height, width, layer.kernel_h, layer.kernel_w
        )
        self.scatter_idx: np.ndarray | None = None
        if self.identity_cols:
            self.cols = _ViewSlot(in_slot, (k, positions))
            self.cols_grad = _ViewSlot(in_grad, (k, positions))
        else:
            self.cols = engine._new_slot((k, positions))
            self.cols_grad = engine._new_slot((k, positions), training_only=True)
        self.grad_weight_work = engine._new_slot(
            (layer.out_channels, k), training_only=True
        )
        self.out3 = engine._new_slot((layer.out_channels, positions))
        self.out3_grad = engine._new_slot((layer.out_channels, positions), training_only=True)
        self.out_slot = _ViewSlot(self.out3, (layer.out_channels, self.out_h, self.out_w))
        self.out_grad = _ViewSlot(
            self.out3_grad, (layer.out_channels, self.out_h, self.out_w)
        )
        self.out_shape = (layer.out_channels, self.out_h, self.out_w)
        self.weight = engine._register(layer.weight)
        self.bias = engine._register(layer.bias)
        self.weight_shape = layer.weight.shape
        engine._train_growers.append(self)

    def grow_train(self, capacity: int) -> None:
        if self.identity_cols:
            return
        # Per-sample flat scatter targets: sample i writes into block i.
        self.scatter_idx = (
            np.arange(capacity)[:, None, None] * self.flat_size
            + self.gather_idx[None, :, :]
        )

    def forward(self, n: int, training: bool) -> None:
        cols = self.cols.view(n)
        if not self.identity_cols:
            x_flat = self.in_slot.view(n).reshape(n, self.flat_size)
            # mode="clip" skips numpy's bounds-checking slow path; the
            # compile-time index plan is in range by construction, so values
            # are unchanged.
            np.take(x_flat, self.gather_idx, axis=1, out=cols, mode="clip")
        weight_2d = self.weight.value.reshape(self.out3.shape[0], -1)
        conv_forward_gemm(weight_2d, cols, self.bias.value, out=self.out3.view(n))

    def backward(self, n: int) -> None:
        grad_flat = self.out3_grad.view(n)
        cols = self.cols.view(n)
        conv_grad_weight(
            grad_flat,
            cols,
            out=self.weight.grad.reshape(self.grad_weight_work.shape),
            work=self.grad_weight_work.view(n),
        )
        grad_flat.sum(axis=(0, 2), out=self.bias.grad)
        if not self.needs_input_grad:
            return
        weight_2d = self.weight.value.reshape(self.out3.shape[0], -1)
        grad_cols = self.cols_grad.view(n)
        if self.identity_cols:
            # cols_grad aliases in_grad: the GEMM writes the input gradient.
            conv_grad_cols(weight_2d, grad_flat, out=grad_cols)
            return
        conv_grad_cols(weight_2d, grad_flat, out=grad_cols)
        scattered = np.bincount(
            self.scatter_idx[:n].ravel(),
            weights=grad_cols.ravel(),
            minlength=n * self.flat_size,
        )
        self.in_grad.view(n).reshape(n, self.flat_size)[...] = scattered.reshape(
            n, self.flat_size
        )


class _ReLUOp:
    def __init__(self, engine, in_slot, in_grad, shape, needs_input_grad) -> None:
        self.in_slot = in_slot
        self.in_grad = in_grad
        self.needs_input_grad = needs_input_grad
        self.mask = engine._new_slot(shape, dtype=bool)
        self.out_slot = engine._new_slot(shape)
        self.out_grad = engine._new_slot(shape, training_only=True)
        self.out_shape = shape

    def forward(self, n: int, training: bool) -> None:
        x = self.in_slot.view(n)
        mask = self.mask.view(n)
        np.greater(x, 0, out=mask)
        np.multiply(x, mask, out=self.out_slot.view(n))

    def backward(self, n: int) -> None:
        if not self.needs_input_grad:
            return
        np.multiply(self.out_grad.view(n), self.mask.view(n), out=self.in_grad.view(n))


class _MaxPoolOp:
    """Max pooling as one window-gather plus contiguous last-axis max/argmax.

    The gather index plan lays every ``(pool_h, pool_w)`` window out
    contiguously in row-major order — the same element order the loop
    backend's window view uses — so the max values and first-max argmax are
    identical; the backward pass scatters each window's gradient through the
    same plan.
    """

    def __init__(self, engine, layer: MaxPool2D, in_slot, in_grad, in_shape, needs_input_grad):
        if len(in_shape) != 3:
            raise EngineCompileError(f"MaxPool2D expects (C, H, W) input, got {in_shape}")
        channels, height, width = in_shape
        self.pool_h = min(layer.pool_h, height)
        self.pool_w = min(layer.pool_w, width)
        self.out_h = height // self.pool_h
        self.out_w = width // self.pool_w
        self.in_shape = in_shape
        self.in_slot = in_slot
        self.in_grad = in_grad
        self.needs_input_grad = needs_input_grad
        self.flat_size = channels * height * width
        self.num_windows = channels * self.out_h * self.out_w
        window = self.pool_h * self.pool_w
        self.window = window
        self.out_shape = (channels, self.out_h, self.out_w)
        self.out_slot = engine._new_slot(self.out_shape)
        self.out_grad = engine._new_slot(self.out_shape, training_only=True)
        self.arg = engine._new_slot((self.num_windows,), dtype=np.intp, training_only=True)
        self.gathered = engine._new_slot((window, self.num_windows))
        self._better = engine._new_slot((self.num_windows,), dtype=bool, training_only=True)
        # (windows, pool_h*pool_w) flat input index per window element.
        rows = (
            np.arange(self.out_h)[:, None] * self.pool_h
            + np.arange(self.pool_h)[None, :]
        )
        columns = (
            np.arange(self.out_w)[:, None] * self.pool_w
            + np.arange(self.pool_w)[None, :]
        )
        spatial = (
            rows[:, None, :, None] * width + columns[None, :, None, :]
        ).reshape(self.out_h * self.out_w, window)
        self.gather_idx = (
            np.arange(channels)[:, None, None] * (height * width) + spatial[None]
        ).reshape(self.num_windows, window)
        # Gather in (window_slot, window) order so each fold step reads one
        # contiguous row of the gathered buffer.
        self.gather_idx_flat = np.ascontiguousarray(self.gather_idx.T).reshape(-1)
        self.window_idx = np.arange(self.num_windows)[None, :]
        self.sample_idx: np.ndarray | None = None
        engine._train_growers.append(self)

    def grow_train(self, capacity: int) -> None:
        self.sample_idx = np.arange(capacity)[:, None]

    def forward(self, n: int, training: bool) -> None:
        # Gathered layout is (n, window_slot, windows): one take, then the
        # max/argmax fold runs `window - 1` full-array elementwise passes
        # instead of numpy's slow tiny-axis reductions.  Max is exact under
        # any order; strict `>` keeps the loop backend's first-max argmax.
        x_flat = self.in_slot.view(n).reshape(n, self.flat_size)
        gathered = self.gathered.view(n)
        np.take(
            x_flat, self.gather_idx_flat, axis=1, mode="clip",
            out=gathered.reshape(n, -1),
        )
        out = self.out_slot.view(n).reshape(n, self.num_windows)
        out[...] = gathered[:, 0, :]
        if training:
            arg = self.arg.view(n)
            arg[...] = 0
            better = self._better.view(n)
            for slot in range(1, self.window):
                candidate = gathered[:, slot, :]
                np.greater(candidate, out, out=better)
                np.copyto(out, candidate, where=better)
                np.copyto(arg, slot, where=better)
        else:
            for slot in range(1, self.window):
                np.maximum(out, gathered[:, slot, :], out=out)

    def backward(self, n: int) -> None:
        if not self.needs_input_grad:
            return
        arg = self.arg.view(n)
        targets = self.gather_idx[self.window_idx, arg]
        grad_flat = self.in_grad.view(n).reshape(n, self.flat_size)
        grad_flat[...] = 0.0
        grad_flat[self.sample_idx[:n], targets] = self.out_grad.view(n).reshape(
            n, self.num_windows
        )


class _GlobalMaxPoolOp:
    def __init__(self, engine, in_slot, in_grad, in_shape, needs_input_grad):
        if len(in_shape) != 3:
            raise EngineCompileError(
                f"GlobalMaxPool2D expects (C, H, W) input, got {in_shape}"
            )
        channels = in_shape[0]
        self.spatial = in_shape[1] * in_shape[2]
        self.in_slot = in_slot
        self.in_grad = in_grad
        self.needs_input_grad = needs_input_grad
        self.out_shape = (channels,)
        self.out_slot = engine._new_slot(self.out_shape)
        self.out_grad = engine._new_slot(self.out_shape, training_only=True)
        self.arg = engine._new_slot(self.out_shape, dtype=np.intp)
        self.channel_idx = np.arange(channels)[None, :]
        self.sample_idx: np.ndarray | None = None
        engine._growers.append(self)

    def grow(self, capacity: int) -> None:
        self.sample_idx = np.arange(capacity)[:, None]

    def forward(self, n: int, training: bool) -> None:
        flat = self.in_slot.view(n).reshape(n, self.out_shape[0], self.spatial)
        arg = self.arg.view(n)
        np.argmax(flat, axis=2, out=arg)
        self.out_slot.view(n)[...] = flat[self.sample_idx[:n], self.channel_idx, arg]

    def backward(self, n: int) -> None:
        if not self.needs_input_grad:
            return
        grad_flat = self.in_grad.view(n).reshape(n, self.out_shape[0], self.spatial)
        grad_flat[...] = 0.0
        grad_flat[self.sample_idx[:n], self.channel_idx, self.arg.view(n)] = (
            self.out_grad.view(n)
        )


class _DenseOp:
    def __init__(self, engine, layer: Dense, in_slot, in_grad, in_shape, needs_input_grad):
        if len(in_shape) != 1 or in_shape[0] != layer.weight.shape[0]:
            raise EngineCompileError(
                f"Dense expects ({layer.weight.shape[0]},) input, got {in_shape}"
            )
        self.in_slot = in_slot
        self.in_grad = in_grad
        self.needs_input_grad = needs_input_grad
        self.out_shape = (layer.weight.shape[1],)
        self.out_slot = engine._new_slot(self.out_shape)
        self.out_grad = engine._new_slot(self.out_shape, training_only=True)
        self.weight = engine._register(layer.weight)
        self.bias = engine._register(layer.bias)

    def forward(self, n: int, training: bool) -> None:
        out = self.out_slot.view(n)
        np.matmul(self.in_slot.view(n), self.weight.value, out=out)
        out += self.bias.value

    def backward(self, n: int) -> None:
        grad_out = self.out_grad.view(n)
        np.matmul(self.in_slot.view(n).T, grad_out, out=self.weight.grad)
        grad_out.sum(axis=0, out=self.bias.grad)
        if self.needs_input_grad:
            np.matmul(grad_out, self.weight.value.T, out=self.in_grad.view(n))


class _DropoutOp:
    def __init__(self, engine, layer: Dropout, in_slot, in_grad, shape, needs_input_grad):
        self.rate = layer.rate
        self.rng = layer._rng  # shared with the loop layer: same mask sequence
        self.shape = shape
        self.in_slot = in_slot
        self.in_grad = in_grad
        self.needs_input_grad = needs_input_grad
        self.mask = engine._new_slot(shape, training_only=True)
        self.out_slot = engine._new_slot(shape)
        self.out_grad = engine._new_slot(shape, training_only=True)
        self.out_shape = shape
        self._masked = False

    def forward(self, n: int, training: bool) -> None:
        x = self.in_slot.view(n)
        if not training or self.rate == 0.0:
            self.out_slot.view(n)[...] = x
            self._masked = False
            return
        keep_prob = 1.0 - self.rate
        mask = self.mask.view(n)
        mask[...] = (self.rng.random((n,) + self.shape) < keep_prob) / keep_prob
        np.multiply(x, mask, out=self.out_slot.view(n))
        self._masked = True

    def backward(self, n: int) -> None:
        if not self.needs_input_grad:
            return
        if self._masked:
            np.multiply(self.out_grad.view(n), self.mask.view(n), out=self.in_grad.view(n))
        else:
            self.in_grad.view(n)[...] = self.out_grad.view(n)


class _ParallelOp:
    """Branch-and-concatenate composite mirroring ``ParallelConcat``."""

    def __init__(self, engine, in_grad, segments, widths, needs_input_grad):
        self.in_grad = in_grad
        self.segments = segments  # (ops, out_slot, out_grad, seg_in_grad)
        self.offsets = np.concatenate([[0], np.cumsum(widths)])
        self.needs_input_grad = needs_input_grad
        total = int(self.offsets[-1])
        self.out_shape = (total,)
        self.out_slot = engine._new_slot(self.out_shape)
        self.out_grad = engine._new_slot(self.out_shape, training_only=True)

    def forward(self, n: int, training: bool) -> None:
        out = self.out_slot.view(n)
        for index, (ops, seg_out, _, _) in enumerate(self.segments):
            for op in ops:
                op.forward(n, training)
            out[:, self.offsets[index] : self.offsets[index + 1]] = seg_out.view(n)

    def backward(self, n: int) -> None:
        grad_out = self.out_grad.view(n)
        accumulated = False
        for index, (ops, _, seg_out_grad, seg_in_grad) in enumerate(self.segments):
            seg_out_grad.view(n)[...] = grad_out[
                :, self.offsets[index] : self.offsets[index + 1]
            ]
            for op in reversed(ops):
                op.backward(n)
            if self.needs_input_grad:
                if not accumulated:
                    self.in_grad.view(n)[...] = seg_in_grad.view(n)
                    accumulated = True
                else:
                    self.in_grad.view(n)[...] += seg_in_grad.view(n)


# ------------------------------------------------------------ parameter packs
class _ParamRef:
    """A parameter's slice of the packed theta/grad vectors."""

    __slots__ = ("source", "offset", "size", "shape", "value", "grad")

    def __init__(self, source: np.ndarray, offset: int) -> None:
        self.source = source
        self.offset = offset
        self.size = source.size
        self.shape = source.shape
        self.value: np.ndarray | None = None
        self.grad: np.ndarray | None = None


class _FusedAdam:
    """Whole-vector Adam on the packed parameter/gradient buffers.

    Elementwise identical to :class:`repro.ml.nn.optimizers.Adam` walking the
    parameter list: every parameter steps on every batch, so the per-name
    timesteps all equal the shared timestep.  On ``finish`` the packed
    moments are written back into the optimiser's per-name dictionaries so a
    later loop-backend fit (or refit) continues from the same state.
    """

    def __init__(self, optimizer: Adam, engine: "CompiledNetwork") -> None:
        self.optimizer = optimizer
        self.engine = engine
        size = engine.theta.size
        self.first_moment = np.zeros(size)
        self.second_moment = np.zeros(size)
        self.step_count = 0
        self._m_hat = np.empty(size)
        self._v_hat = np.empty(size)

    def step(self) -> None:
        opt = self.optimizer
        theta, grad = self.engine.theta, self.engine.grad
        m, v = self.first_moment, self.second_moment
        self.step_count += 1
        t = self.step_count

        m *= opt.beta1
        m += (1.0 - opt.beta1) * grad
        v *= opt.beta2
        v += (1.0 - opt.beta2) * grad * grad

        m_hat, v_hat = self._m_hat, self._v_hat
        np.divide(m, 1.0 - opt.beta1**t, out=m_hat)
        np.divide(v, 1.0 - opt.beta2**t, out=v_hat)
        np.sqrt(v_hat, out=v_hat)
        v_hat += opt.epsilon
        m_hat *= opt.learning_rate
        m_hat /= v_hat
        theta -= m_hat

    def finish(self) -> None:
        opt = self.optimizer
        for name, ref in zip(self.engine.param_names, self.engine.param_refs):
            opt._first_moment[name] = (
                self.first_moment[ref.offset : ref.offset + ref.size]
                .reshape(ref.shape)
                .copy()
            )
            opt._second_moment[name] = (
                self.second_moment[ref.offset : ref.offset + ref.size]
                .reshape(ref.shape)
                .copy()
            )
            opt._step_count[name] = self.step_count


class _FusedSGD:
    """Whole-vector SGD (with momentum) on the packed buffers."""

    def __init__(self, optimizer: SGD, engine: "CompiledNetwork") -> None:
        self.optimizer = optimizer
        self.engine = engine
        self.velocity = (
            np.zeros(engine.theta.size) if optimizer.momentum > 0.0 else None
        )

    def step(self) -> None:
        opt = self.optimizer
        theta, grad = self.engine.theta, self.engine.grad
        if self.velocity is not None:
            self.velocity *= opt.momentum
            self.velocity -= opt.learning_rate * grad
            theta += self.velocity
        else:
            theta -= opt.learning_rate * grad

    def finish(self) -> None:
        if self.velocity is None:
            return
        opt = self.optimizer
        for name, ref in zip(self.engine.param_names, self.engine.param_refs):
            opt._velocity[name] = (
                self.velocity[ref.offset : ref.offset + ref.size]
                .reshape(ref.shape)
                .copy()
            )


class _GenericStepper:
    """Fallback for custom/stateful optimisers: per-parameter views.

    The views alias the packed buffers, so ``optimizer.step`` mutates theta
    directly; names match the loop backend's ``model.parameters()`` names,
    so name-keyed optimiser state carries across backends.
    """

    def __init__(self, optimizer: Optimizer, engine: "CompiledNetwork") -> None:
        self.optimizer = optimizer
        self.triples = [
            (name, ref.value, ref.grad)
            for name, ref in zip(engine.param_names, engine.param_refs)
        ]

    def step(self) -> None:
        self.optimizer.step(self.triples)

    def finish(self) -> None:
        pass


# ---------------------------------------------------------------- the engine
class CompiledNetwork:
    """A model compiled into a flat tape of shape-specialised array ops.

    Parameters
    ----------
    model:
        A built :class:`Sequential` / :class:`ParallelConcat` tree of the
        supported layer types (everything CommCNN uses).
    input_shape:
        Per-sample input shape (without the batch axis).
    num_classes:
        Expected logits width; checked once at compile time instead of once
        per batch.
    """

    def __init__(self, model, input_shape: tuple[int, ...], num_classes: int) -> None:
        from repro.ml.nn.network import ParallelConcat, Sequential

        self._sequential_type = Sequential
        self._parallel_type = ParallelConcat
        self.model = model
        self.input_shape = tuple(int(s) for s in input_shape)
        self.num_classes = num_classes
        self.capacity = 0
        self.train_capacity = 0
        self.slots: list[_Slot] = []
        self.param_refs: list[_ParamRef] = []
        self._growers: list = []
        self._train_growers: list = []
        self._param_size = 0

        self.in_slot = self._new_slot(self.input_shape)
        self.in_grad = self._new_slot(self.input_shape, training_only=True)
        self.ops: list = []
        out_slot, out_grad, out_shape = self._compile(
            model, self.in_slot, self.in_grad, self.input_shape, self.ops, False
        )
        if len(out_shape) != 1:
            raise EngineCompileError(
                f"model output must be 2-D (N, classes); got per-sample {out_shape}"
            )
        if out_shape[0] != num_classes:
            raise ModelConfigError(
                f"model emits {out_shape[0]} logits, expected {num_classes}"
            )
        self.logits_slot = out_slot
        self.logits_grad = out_grad

        # Pack parameters/grads into contiguous vectors; verify the packing
        # order matches model.parameters() so names line up one-to-one.
        self.theta = np.empty(self._param_size)
        self.grad = np.zeros(self._param_size)
        for ref in self.param_refs:
            ref.value = self.theta[ref.offset : ref.offset + ref.size].reshape(ref.shape)
            ref.grad = self.grad[ref.offset : ref.offset + ref.size].reshape(ref.shape)
        named = model.parameters()
        if len(named) != len(self.param_refs) or any(
            param is not ref.source for (_, param, _), ref in zip(named, self.param_refs)
        ):
            raise EngineCompileError(
                "compiled parameter order disagrees with model.parameters()"
            )
        self.param_names = [name for name, _, _ in named]
        self._source_grads = [grad for _, _, grad in named]
        self.sync_from_model()

    # ------------------------------------------------------------ compilation
    def _new_slot(
        self, shape: tuple[int, ...], dtype=np.float64, training_only: bool = False
    ) -> _Slot:
        slot = _Slot(shape, dtype, training_only=training_only)
        self.slots.append(slot)
        return slot

    def _register(self, param: np.ndarray) -> _ParamRef:
        ref = _ParamRef(param, self._param_size)
        self._param_size += ref.size
        self.param_refs.append(ref)
        return ref

    def _compile(self, layer, in_slot, in_grad, in_shape, ops, needs_input_grad):
        if isinstance(layer, self._sequential_type):
            slot, grad, shape = in_slot, in_grad, in_shape
            for index, child in enumerate(layer.layers):
                slot, grad, shape = self._compile(
                    child, slot, grad, shape, ops, needs_input_grad or index > 0
                )
            return slot, grad, shape
        if isinstance(layer, self._parallel_type):
            segments = []
            widths = []
            for branch in layer.branches:
                seg_ops: list = []
                seg_in_grad = self._new_slot(in_shape, training_only=True)
                seg_out, seg_out_grad, seg_shape = self._compile(
                    branch, in_slot, seg_in_grad, in_shape, seg_ops, needs_input_grad
                )
                if len(seg_shape) != 1:
                    raise EngineCompileError(
                        "every ParallelConcat branch must emit a 2-D output; "
                        f"got per-sample shape {seg_shape}"
                    )
                segments.append((seg_ops, seg_out, seg_out_grad, seg_in_grad))
                widths.append(seg_shape[0])
            op = _ParallelOp(self, in_grad, segments, widths, needs_input_grad)
            ops.append(op)
            return op.out_slot, op.out_grad, op.out_shape
        if isinstance(layer, Conv2D):
            if len(in_shape) != 3:
                raise EngineCompileError(f"Conv2D expects (C, H, W) input, got {in_shape}")
            op = _ConvOp(self, layer, in_slot, in_grad, in_shape, needs_input_grad)
        elif isinstance(layer, ReLU):
            op = _ReLUOp(self, in_slot, in_grad, in_shape, needs_input_grad)
        elif isinstance(layer, MaxPool2D):
            op = _MaxPoolOp(self, layer, in_slot, in_grad, in_shape, needs_input_grad)
        elif isinstance(layer, GlobalMaxPool2D):
            op = _GlobalMaxPoolOp(self, in_slot, in_grad, in_shape, needs_input_grad)
        elif isinstance(layer, Dense):
            op = _DenseOp(self, layer, in_slot, in_grad, in_shape, needs_input_grad)
        elif isinstance(layer, Dropout):
            op = _DropoutOp(self, layer, in_slot, in_grad, in_shape, needs_input_grad)
        elif isinstance(layer, Flatten):
            width = 1
            for dim in in_shape:
                width *= dim
            return (
                _ViewSlot(in_slot, (width,)),
                _ViewSlot(in_grad, (width,)),
                (width,),
            )
        else:
            raise EngineCompileError(
                f"fused engine does not support layer type {type(layer).__name__}"
            )
        ops.append(op)
        return op.out_slot, op.out_grad, op.out_shape

    # -------------------------------------------------------------- execution
    def _ensure_capacity(self, n: int, training: bool = False) -> None:
        if n > self.capacity:
            for slot in self.slots:
                if not slot.training_only:
                    slot.array = np.empty((n,) + slot.shape, dtype=slot.dtype)
            for grower in self._growers:
                grower.grow(n)
            self.capacity = n
        if training and n > self.train_capacity:
            for slot in self.slots:
                if slot.training_only:
                    slot.array = np.empty((n,) + slot.shape, dtype=slot.dtype)
            for grower in self._train_growers:
                grower.grow_train(n)
            self.train_capacity = n

    def _run_forward(self, n: int, training: bool) -> None:
        for op in self.ops:
            op.forward(n, training)

    def _run_backward(self, n: int) -> None:
        for op in reversed(self.ops):
            op.backward(n)

    def sync_from_model(self) -> None:
        """Copy the model's current parameter tensors into the packed vector."""
        for ref in self.param_refs:
            ref.value[...] = ref.source

    def write_back(self) -> None:
        """Copy fitted parameters (and last gradients) back to the model."""
        for ref, source_grad in zip(self.param_refs, self._source_grads):
            ref.source[...] = ref.value
            source_grad[...] = ref.grad

    def forward(self, X: np.ndarray) -> np.ndarray:
        """Inference logits for ``X``; bit-identical to the loop backend."""
        X = np.asarray(X, dtype=np.float64)
        if X.shape[1:] != self.input_shape:
            raise DimensionMismatchError(
                f"expected input of shape (N, {self.input_shape}), got {X.shape}"
            )
        n = X.shape[0]
        if n == 0:
            return np.zeros((0, self.num_classes))
        self._ensure_capacity(n)
        self.in_slot.view(n)[...] = X
        self._run_forward(n, training=False)
        return self.logits_slot.view(n).copy()

    def _make_stepper(self, optimizer: Optimizer):
        if type(optimizer) is Adam and not optimizer._first_moment:
            return _FusedAdam(optimizer, self)
        if type(optimizer) is SGD and not optimizer._velocity:
            return _FusedSGD(optimizer, self)
        return _GenericStepper(optimizer, self)

    def train(
        self,
        X: np.ndarray,
        y: np.ndarray,
        *,
        epochs: int,
        batch_size: int,
        seed: int,
        optimizer: Optimizer,
        loss,
    ) -> list[float]:
        """Mini-batch training; mirrors ``NeuralNetworkClassifier.fit`` exactly."""
        n_samples = X.shape[0]
        self.sync_from_model()
        stepper = self._make_stepper(optimizer)
        self._ensure_capacity(min(batch_size, n_samples), training=True)

        rng = np.random.default_rng(seed)
        history: list[float] = []
        for epoch in range(epochs):
            order = rng.permutation(n_samples)
            epoch_loss = 0.0
            num_batches = 0
            for start in range(0, n_samples, batch_size):
                batch_idx = order[start : start + batch_size]
                n = batch_idx.shape[0]
                np.take(X, batch_idx, axis=0, out=self.in_slot.view(n), mode="clip")
                self._run_forward(n, training=True)
                batch_loss = loss.forward(self.logits_slot.view(n), y[batch_idx])
                if not np.isfinite(batch_loss):
                    raise TrainingDivergedError(
                        f"non-finite batch loss ({batch_loss}) in epoch "
                        f"{epoch + 1} of {epochs}; lower the learning "
                        "rate or check the inputs for non-finite values"
                    )
                self.logits_grad.view(n)[...] = loss.backward()
                self._run_backward(n)
                stepper.step()
                epoch_loss += batch_loss
                num_batches += 1
            history.append(epoch_loss / max(num_batches, 1))
        stepper.finish()
        self.write_back()
        return history
