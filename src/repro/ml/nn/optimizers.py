"""Optimisers for the NumPy neural-network stack (SGD with momentum, Adam)."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ModelConfigError


class Optimizer:
    """Base optimiser: updates parameters in place given (param, grad) pairs."""

    def step(self, parameters: list[tuple[str, np.ndarray, np.ndarray]]) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, learning_rate: float = 0.01, momentum: float = 0.0) -> None:
        if learning_rate <= 0:
            raise ModelConfigError("learning_rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ModelConfigError("momentum must be in [0, 1)")
        self.learning_rate = learning_rate
        self.momentum = momentum
        self._velocity: dict[int, np.ndarray] = {}

    def step(self, parameters: list[tuple[str, np.ndarray, np.ndarray]]) -> None:
        for _, param, grad in parameters:
            key = id(param)
            if self.momentum > 0.0:
                velocity = self._velocity.setdefault(key, np.zeros_like(param))
                velocity *= self.momentum
                velocity -= self.learning_rate * grad
                param += velocity
            else:
                param -= self.learning_rate * grad


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba 2015)."""

    def __init__(
        self,
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ) -> None:
        if learning_rate <= 0:
            raise ModelConfigError("learning_rate must be positive")
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ModelConfigError("beta1 and beta2 must be in [0, 1)")
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._first_moment: dict[int, np.ndarray] = {}
        self._second_moment: dict[int, np.ndarray] = {}
        self._step_count: dict[int, int] = {}

    def step(self, parameters: list[tuple[str, np.ndarray, np.ndarray]]) -> None:
        for _, param, grad in parameters:
            key = id(param)
            m = self._first_moment.setdefault(key, np.zeros_like(param))
            v = self._second_moment.setdefault(key, np.zeros_like(param))
            t = self._step_count.get(key, 0) + 1
            self._step_count[key] = t

            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad

            m_hat = m / (1.0 - self.beta1**t)
            v_hat = v / (1.0 - self.beta2**t)
            param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)
