"""Optimisers for the NumPy neural-network stack (SGD with momentum, Adam).

Optimiser state (momentum velocities, Adam moments, timesteps) is keyed by
the *parameter name* handed to :meth:`Optimizer.step`, not by ``id(param)``:
an array id can be recycled by the allocator after a parameter is garbage
collected, which would silently splice stale state onto a fresh parameter.
Names are stable for the lifetime of a model (``Sequential`` and
``ParallelConcat`` prefix them with the layer/branch position), so they make
a collision-free key as long as each named parameter appears at most once
per ``step`` call.  The flip side: do not share one optimiser instance
across *different* models — their parameter names coincide
(``layer0.weight``, ...), so the second model would inherit the first
model's moments and timesteps.  Use one optimiser per model.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ModelConfigError


class Optimizer:
    """Base optimiser: updates parameters in place given (name, param, grad) triples."""

    def step(self, parameters: list[tuple[str, np.ndarray, np.ndarray]]) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, learning_rate: float = 0.01, momentum: float = 0.0) -> None:
        if learning_rate <= 0:
            raise ModelConfigError("learning_rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ModelConfigError("momentum must be in [0, 1)")
        self.learning_rate = learning_rate
        self.momentum = momentum
        self._velocity: dict[str, np.ndarray] = {}

    def step(self, parameters: list[tuple[str, np.ndarray, np.ndarray]]) -> None:
        for name, param, grad in parameters:
            if self.momentum > 0.0:
                velocity = self._velocity.get(name)
                if velocity is None:
                    velocity = self._velocity[name] = np.zeros_like(param)
                velocity *= self.momentum
                velocity -= self.learning_rate * grad
                param += velocity
            else:
                param -= self.learning_rate * grad


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba 2015)."""

    def __init__(
        self,
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ) -> None:
        if learning_rate <= 0:
            raise ModelConfigError("learning_rate must be positive")
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ModelConfigError("beta1 and beta2 must be in [0, 1)")
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._first_moment: dict[str, np.ndarray] = {}
        self._second_moment: dict[str, np.ndarray] = {}
        self._step_count: dict[str, int] = {}

    def step(self, parameters: list[tuple[str, np.ndarray, np.ndarray]]) -> None:
        for name, param, grad in parameters:
            m = self._first_moment.get(name)
            if m is None:
                m = self._first_moment[name] = np.zeros_like(param)
            v = self._second_moment.get(name)
            if v is None:
                v = self._second_moment[name] = np.zeros_like(param)
            t = self._step_count.get(name, 0) + 1
            self._step_count[name] = t

            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad

            m_hat = m / (1.0 - self.beta1**t)
            v_hat = v / (1.0 - self.beta2**t)
            param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)
