"""From-scratch NumPy neural-network stack used to build CommCNN.

The stack executes on one of two backends, selected by the ``backend`` knob
on :class:`NeuralNetworkClassifier` (``"loop"`` / ``"fused"`` / ``"auto"``):

* **loop** — the layer-by-layer object graph in :mod:`repro.ml.nn.layers` /
  :mod:`repro.ml.nn.network`: each layer's ``forward``/``backward`` allocates
  its own tensors and the optimiser walks the ``(name, param, grad)`` list.
  This is the readable reference implementation.
* **fused** — the compiled execution engine in :mod:`repro.ml.nn.engine`:
  the model is compiled once per fit into a flat tape of shape-specialised
  array ops with precomputed im2col gather/scatter index plans, preallocated
  activation/gradient workspaces reused across mini-batches, and all
  parameters/gradients/optimiser moments packed into contiguous vectors so
  an optimiser step is a handful of whole-vector ops.

Both backends run the same float operations in the same order, so logits,
fitted weights and loss histories are **bit-identical**
(``tests/test_nn_engine.py`` arbitrates).  ``"auto"`` (the default) picks
the fused engine whenever the model compiles — i.e. it is built from the
layer types above, which every CommCNN is — and falls back to the loop
backend when compilation raises :class:`~repro.ml.nn.engine.
EngineCompileError` (custom layer types, unsupported shapes).
"""

from repro.ml.nn.layers import (
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    GlobalMaxPool2D,
    Layer,
    MaxPool2D,
    ReLU,
)
from repro.ml.nn.losses import SoftmaxCrossEntropy
from repro.ml.nn.engine import CompiledNetwork, EngineCompileError
from repro.ml.nn.network import (
    NN_BACKENDS,
    NeuralNetworkClassifier,
    ParallelConcat,
    Sequential,
)
from repro.ml.nn.optimizers import SGD, Adam, Optimizer

__all__ = [
    "Layer",
    "Conv2D",
    "Dense",
    "Dropout",
    "Flatten",
    "GlobalMaxPool2D",
    "MaxPool2D",
    "ReLU",
    "SoftmaxCrossEntropy",
    "Sequential",
    "ParallelConcat",
    "NeuralNetworkClassifier",
    "CompiledNetwork",
    "EngineCompileError",
    "NN_BACKENDS",
    "Optimizer",
    "SGD",
    "Adam",
]
