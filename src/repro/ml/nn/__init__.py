"""From-scratch NumPy neural-network stack used to build CommCNN."""

from repro.ml.nn.layers import (
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    GlobalMaxPool2D,
    Layer,
    MaxPool2D,
    ReLU,
)
from repro.ml.nn.losses import SoftmaxCrossEntropy
from repro.ml.nn.network import NeuralNetworkClassifier, ParallelConcat, Sequential
from repro.ml.nn.optimizers import SGD, Adam, Optimizer

__all__ = [
    "Layer",
    "Conv2D",
    "Dense",
    "Dropout",
    "Flatten",
    "GlobalMaxPool2D",
    "MaxPool2D",
    "ReLU",
    "SoftmaxCrossEntropy",
    "Sequential",
    "ParallelConcat",
    "NeuralNetworkClassifier",
    "Optimizer",
    "SGD",
    "Adam",
]
