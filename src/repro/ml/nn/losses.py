"""Loss functions for the NumPy neural-network stack."""

from __future__ import annotations

import numpy as np

from repro.exceptions import DimensionMismatchError
from repro.ml.base import one_hot, softmax


class SoftmaxCrossEntropy:
    """Softmax activation fused with cross-entropy loss.

    The fused form has the well-known simple gradient ``(p - y) / N`` which is
    both faster and numerically safer than composing a softmax layer with a
    separate log-loss.
    """

    def __init__(self) -> None:
        self._probabilities: np.ndarray | None = None
        self._targets: np.ndarray | None = None

    def forward(self, logits: np.ndarray, labels: np.ndarray) -> float:
        """Compute the mean cross-entropy of ``logits`` against integer ``labels``."""
        logits = np.asarray(logits, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.int64)
        if logits.ndim != 2:
            raise DimensionMismatchError(f"logits must be 2-D, got shape {logits.shape}")
        if labels.shape != (logits.shape[0],):
            raise DimensionMismatchError(
                f"labels must have shape ({logits.shape[0]},), got {labels.shape}"
            )
        probabilities = softmax(logits)
        targets = one_hot(labels, logits.shape[1])
        self._probabilities = probabilities
        self._targets = targets
        return float(
            -np.mean(np.sum(targets * np.log(np.clip(probabilities, 1e-12, 1.0)), axis=1))
        )

    def backward(self) -> np.ndarray:
        """Gradient of the loss with respect to the logits."""
        assert self._probabilities is not None and self._targets is not None
        n = self._probabilities.shape[0]
        return (self._probabilities - self._targets) / n

    @staticmethod
    def probabilities(logits: np.ndarray) -> np.ndarray:
        """Softmax probabilities of ``logits`` (for inference paths)."""
        return softmax(np.asarray(logits, dtype=np.float64))
