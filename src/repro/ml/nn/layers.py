"""NumPy neural-network layers used to assemble CommCNN.

All convolutional layers operate on tensors of shape ``(N, C, H, W)``; dense
layers operate on ``(N, D)``.  Every layer implements

* ``forward(x, training)`` → output,
* ``backward(grad_output)`` → gradient with respect to the layer input, and
* ``parameters()`` → list of ``(name, param_array, grad_array)`` triples for
  the optimiser (empty for parameter-free layers).

CommCNN's input matrices are tiny (``k × (|I|+|f|)``, typically 20 × 11), so
the implementation favours clarity (im2col-based convolution) over peak
throughput.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DimensionMismatchError, ModelConfigError


class Layer:
    """Base class for all layers."""

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def parameters(self) -> list[tuple[str, np.ndarray, np.ndarray]]:
        """``(name, parameter, gradient)`` triples; default is parameter-free."""
        return []

    def clear_caches(self) -> None:
        """Drop tensors cached by ``forward(training=True)`` for the backward pass.

        Training caches pin the last batch's activations; containers recurse
        so :meth:`NeuralNetworkClassifier.fit` can release them after the
        final epoch.  Parameter-free stateless layers have nothing to clear.
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return type(self).__name__


# ------------------------------------------------------------- GEMM primitives
# Shared by the layer-by-layer "loop" backend below and the compiled "fused"
# engine (repro.ml.nn.engine).  Both backends must perform the *same* float
# ops in the same order so their outputs stay bit-identical; in particular
# np.einsum and BLAS matmul round differently, so every contraction goes
# through exactly one of these helpers.


def conv_forward_gemm(
    weight_matrix: np.ndarray,
    cols: np.ndarray,
    bias: np.ndarray,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """``(F, K) @ (N, K, P) + bias`` → ``(N, F, P)`` via batched 2-D GEMM."""
    out = np.matmul(weight_matrix, cols, out=out)
    out += bias[None, :, None]
    return out


def conv_grad_weight(
    grad_flat: np.ndarray,
    cols: np.ndarray,
    out: np.ndarray | None = None,
    work: np.ndarray | None = None,
) -> np.ndarray:
    """Weight gradient ``sum_n grad[n] @ cols[n].T`` via batched 2-D GEMM.

    ``(N, F, P) x (N, K, P)`` → ``(F, K)``.  The batched-matmul-then-reduce
    form beats one big transposed GEMM here because it needs no layout
    copies.  ``work`` is an optional ``(N, F, K)`` scratch buffer and ``out``
    the optional ``(F, K)`` destination (used by the fused engine to avoid
    per-batch allocation; results are bit-identical either way).
    """
    per_sample = np.matmul(grad_flat, cols.transpose(0, 2, 1), out=work)
    return per_sample.sum(axis=0, out=out)


def conv_grad_cols(
    weight_matrix: np.ndarray,
    grad_flat: np.ndarray,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Column gradient ``(K, F) @ (N, F, P)`` → ``(N, K, P)`` via batched GEMM."""
    return np.matmul(weight_matrix.T, grad_flat, out=out)


def conv_im2col_indices(
    channels: int, height: int, width: int, kernel_h: int, kernel_w: int
) -> np.ndarray:
    """Gather-index plan mapping flat ``(C*H*W)`` input to im2col columns.

    Returns an ``(C*kh*kw, out_h*out_w)`` integer matrix ``idx`` such that
    ``x.reshape(n, -1)[:, idx]`` equals :func:`_im2col` applied to ``x``
    (stride 1, no padding).  Row order matches ``_im2col``'s layout:
    ``k = (row*kw + col)*C + c``.
    """
    out_h = height - kernel_h + 1
    out_w = width - kernel_w + 1
    offsets = np.arange(kernel_h)[:, None] * width + np.arange(kernel_w)[None, :]
    positions = np.arange(out_h)[:, None] * width + np.arange(out_w)[None, :]
    channel_base = np.arange(channels) * (height * width)
    # (kh*kw, C) block layout -> k index = (row*kw+col)*C + c.
    rows = (offsets.reshape(-1, 1) + channel_base[None, :]).reshape(-1, 1)
    return rows + positions.reshape(1, -1)


# --------------------------------------------------------------------- im2col
def _im2col(x: np.ndarray, kernel_h: int, kernel_w: int) -> np.ndarray:
    """Rearrange sliding ``kernel_h × kernel_w`` patches into columns.

    Input ``(N, C, H, W)`` → output ``(N, C*kh*kw, out_h*out_w)`` for stride 1
    and no padding.
    """
    n, channels, height, width = x.shape
    out_h = height - kernel_h + 1
    out_w = width - kernel_w + 1
    cols = np.empty((n, channels * kernel_h * kernel_w, out_h * out_w), dtype=x.dtype)
    col_index = 0
    for row in range(kernel_h):
        for col in range(kernel_w):
            patch = x[:, :, row : row + out_h, col : col + out_w]
            cols[:, col_index * channels : (col_index + 1) * channels, :] = patch.reshape(
                n, channels, out_h * out_w
            )
            col_index += 1
    return cols


def _col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kernel_h: int,
    kernel_w: int,
) -> np.ndarray:
    """Inverse of :func:`_im2col`: scatter-add column gradients back to the image."""
    n, channels, height, width = x_shape
    out_h = height - kernel_h + 1
    out_w = width - kernel_w + 1
    dx = np.zeros(x_shape, dtype=cols.dtype)
    col_index = 0
    for row in range(kernel_h):
        for col in range(kernel_w):
            patch = cols[:, col_index * channels : (col_index + 1) * channels, :]
            dx[:, :, row : row + out_h, col : col + out_w] += patch.reshape(
                n, channels, out_h, out_w
            )
            col_index += 1
    return dx


class Conv2D(Layer):
    """2-D convolution with stride 1 and no padding ("valid").

    Parameters
    ----------
    in_channels, out_channels:
        Channel counts.
    kernel_size:
        ``(kernel_h, kernel_w)``.  CommCNN uses 3×3 (square), 1×W (wide),
        H×1 (long) and 1×1 kernels.
    seed:
        Seed for He-style weight initialisation.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: tuple[int, int],
        seed: int = 0,
    ) -> None:
        if in_channels < 1 or out_channels < 1:
            raise ModelConfigError("channel counts must be positive")
        kernel_h, kernel_w = kernel_size
        if kernel_h < 1 or kernel_w < 1:
            raise ModelConfigError("kernel dimensions must be positive")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_h = kernel_h
        self.kernel_w = kernel_w
        rng = np.random.default_rng(seed)
        fan_in = in_channels * kernel_h * kernel_w
        self.weight = rng.normal(
            scale=np.sqrt(2.0 / fan_in), size=(out_channels, in_channels, kernel_h, kernel_w)
        )
        self.bias = np.zeros(out_channels)
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self._cache: tuple[np.ndarray, tuple[int, int, int, int]] | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise DimensionMismatchError(
                f"Conv2D expected (N, {self.in_channels}, H, W), got {x.shape}"
            )
        n, _, height, width = x.shape
        if height < self.kernel_h or width < self.kernel_w:
            raise DimensionMismatchError(
                f"input {height}x{width} smaller than kernel "
                f"{self.kernel_h}x{self.kernel_w}"
            )
        cols = _im2col(x, self.kernel_h, self.kernel_w)
        weight_matrix = self.weight.reshape(self.out_channels, -1)
        out = conv_forward_gemm(weight_matrix, cols, self.bias)
        out_h = height - self.kernel_h + 1
        out_w = width - self.kernel_w + 1
        if training:
            self._cache = (cols, x.shape)
        return out.reshape(n, self.out_channels, out_h, out_w)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise DimensionMismatchError("backward called before forward(training=True)")
        cols, x_shape = self._cache
        n = grad_output.shape[0]
        grad_flat = grad_output.reshape(n, self.out_channels, -1)
        weight_matrix = self.weight.reshape(self.out_channels, -1)

        self.grad_weight[...] = conv_grad_weight(grad_flat, cols).reshape(
            self.weight.shape
        )
        self.grad_bias[...] = grad_flat.sum(axis=(0, 2))
        grad_cols = conv_grad_cols(weight_matrix, grad_flat)
        return _col2im(grad_cols, x_shape, self.kernel_h, self.kernel_w)

    def parameters(self) -> list[tuple[str, np.ndarray, np.ndarray]]:
        return [
            ("weight", self.weight, self.grad_weight),
            ("bias", self.bias, self.grad_bias),
        ]

    def clear_caches(self) -> None:
        self._cache = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Conv2D({self.in_channels}->{self.out_channels}, "
            f"kernel=({self.kernel_h}, {self.kernel_w}))"
        )


class ReLU(Layer):
    """Element-wise rectified linear unit."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        mask = x > 0
        if training:
            self._mask = mask
        return x * mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        assert self._mask is not None
        return grad_output * self._mask

    def clear_caches(self) -> None:
        self._mask = None


def maxpool_window_argmax(windows: np.ndarray) -> np.ndarray:
    """First-max flat argmax per pooling window.

    ``windows`` has shape ``(N, C, out_h, pool_h, out_w, pool_w)``; the result
    is the ``(N, C, out_h, out_w)`` index of the first maximal element in each
    window's row-major ``(pool_h, pool_w)`` order.  Shared with the fused
    engine so both backends route gradients to the same element on ties.
    """
    n, channels, out_h, pool_h, out_w, pool_w = windows.shape
    per_window = windows.transpose(0, 1, 2, 4, 3, 5).reshape(
        n, channels, out_h, out_w, pool_h * pool_w
    )
    return per_window.argmax(axis=-1)


class MaxPool2D(Layer):
    """Max pooling with pool size equal to stride (non-overlapping windows).

    Inputs whose spatial size is not divisible by the pool size are truncated
    (floor), matching common framework behaviour.  Pool windows are clamped so
    a dimension smaller than the pool size degenerates to size-1 pooling on
    that axis, which keeps tiny CommCNN feature maps usable.

    The training cache stores only the per-window flat argmax (first maximal
    element, ties broken towards row-major order) instead of a full boolean
    window mask; the backward pass scatters the gradient to those indices.
    """

    def __init__(self, pool_size: tuple[int, int] = (2, 2)) -> None:
        pool_h, pool_w = pool_size
        if pool_h < 1 or pool_w < 1:
            raise ModelConfigError("pool dimensions must be positive")
        self.pool_h = pool_h
        self.pool_w = pool_w
        self._cache: tuple[np.ndarray, int, int, tuple[int, ...]] | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 4:
            raise DimensionMismatchError(f"MaxPool2D expects (N, C, H, W), got {x.shape}")
        n, channels, height, width = x.shape
        pool_h = min(self.pool_h, height)
        pool_w = min(self.pool_w, width)
        out_h = height // pool_h
        out_w = width // pool_w
        trimmed = x[:, :, : out_h * pool_h, : out_w * pool_w]
        windows = trimmed.reshape(n, channels, out_h, pool_h, out_w, pool_w)
        out = windows.max(axis=(3, 5))
        if training:
            arg = maxpool_window_argmax(windows)
            self._cache = (arg, pool_h, pool_w, x.shape)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        assert self._cache is not None
        arg, pool_h, pool_w, x_shape = self._cache
        n, channels, height, width = x_shape
        out_h = height // pool_h
        out_w = width // pool_w
        rows = np.arange(out_h)[None, None, :, None] * pool_h + arg // pool_w
        columns = np.arange(out_w)[None, None, None, :] * pool_w + arg % pool_w
        dx = np.zeros((n, channels, height, width), dtype=grad_output.dtype)
        dx[
            np.arange(n)[:, None, None, None],
            np.arange(channels)[None, :, None, None],
            rows,
            columns,
        ] = grad_output
        return dx

    def clear_caches(self) -> None:
        self._cache = None


class GlobalMaxPool2D(Layer):
    """Global max pooling: ``(N, C, H, W)`` → ``(N, C)``."""

    def __init__(self) -> None:
        self._cache: tuple[np.ndarray, tuple[int, ...]] | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 4:
            raise DimensionMismatchError(
                f"GlobalMaxPool2D expects (N, C, H, W), got {x.shape}"
            )
        n, channels, height, width = x.shape
        flat = x.reshape(n, channels, height * width)
        arg = flat.argmax(axis=2)
        out = flat[np.arange(n)[:, None], np.arange(channels)[None, :], arg]
        if training:
            self._cache = (arg, x.shape)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        assert self._cache is not None
        arg, x_shape = self._cache
        n, channels, height, width = x_shape
        dx = np.zeros((n, channels, height * width), dtype=grad_output.dtype)
        dx[np.arange(n)[:, None], np.arange(channels)[None, :], arg] = grad_output
        return dx.reshape(x_shape)

    def clear_caches(self) -> None:
        self._cache = None


class Flatten(Layer):
    """Flatten ``(N, ...)`` into ``(N, D)``."""

    def __init__(self) -> None:
        self._input_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            self._input_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        assert self._input_shape is not None
        return grad_output.reshape(self._input_shape)

    def clear_caches(self) -> None:
        self._input_shape = None


class Dense(Layer):
    """Fully connected layer ``(N, in_features)`` → ``(N, out_features)``."""

    def __init__(self, in_features: int, out_features: int, seed: int = 0) -> None:
        if in_features < 1 or out_features < 1:
            raise ModelConfigError("feature counts must be positive")
        rng = np.random.default_rng(seed)
        self.weight = rng.normal(
            scale=np.sqrt(2.0 / in_features), size=(in_features, out_features)
        )
        self.bias = np.zeros(out_features)
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self._input: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.weight.shape[0]:
            raise DimensionMismatchError(
                f"Dense expected (N, {self.weight.shape[0]}), got {x.shape}"
            )
        if training:
            self._input = x
        return x @ self.weight + self.bias

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        assert self._input is not None
        self.grad_weight[...] = self._input.T @ grad_output
        self.grad_bias[...] = grad_output.sum(axis=0)
        return grad_output @ self.weight.T

    def parameters(self) -> list[tuple[str, np.ndarray, np.ndarray]]:
        return [
            ("weight", self.weight, self.grad_weight),
            ("bias", self.bias, self.grad_bias),
        ]

    def clear_caches(self) -> None:
        self._input = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Dense({self.weight.shape[0]}->{self.weight.shape[1]})"


class Dropout(Layer):
    """Inverted dropout; identity at inference time."""

    def __init__(self, rate: float = 0.5, seed: int = 0) -> None:
        if not 0.0 <= rate < 1.0:
            raise ModelConfigError("dropout rate must be in [0, 1)")
        self.rate = rate
        self._rng = np.random.default_rng(seed)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self.rate == 0.0:
            return x
        keep_prob = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep_prob) / keep_prob
        return x * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_output
        return grad_output * self._mask

    def clear_caches(self) -> None:
        self._mask = None
