"""CART-style regression trees with second-order (Newton) split gain.

These trees are the weak learners inside :class:`repro.ml.gbdt.GradientBoostedClassifier`.
Each tree is fitted to per-sample gradients and hessians of the boosting
objective, exactly as in the XGBoost formulation: a split's gain is

``0.5 * (G_L²/(H_L+λ) + G_R²/(H_R+λ) - G²/(H+λ)) - γ``

and the optimal leaf weight is ``-G/(H+λ)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import DimensionMismatchError, ModelConfigError, NotFittedError
from repro.ml.forest import TreeTensor, best_split_array, resolve_ml_backend


@dataclass
class _TreeNode:
    """A node of the regression tree (internal or leaf)."""

    depth: int
    value: float = 0.0
    leaf_id: int = -1
    feature: int | None = None
    threshold: float = 0.0
    left: "_TreeNode | None" = None
    right: "_TreeNode | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.feature is None


@dataclass
class RegressionTreeConfig:
    """Hyper-parameters of a gradient regression tree."""

    max_depth: int = 3
    min_samples_leaf: int = 2
    reg_lambda: float = 1.0
    gamma: float = 0.0
    min_gain: float = 1e-7
    max_bins: int = 256
    """Histogram resolution of the ``"hist"`` backend: features with at most
    this many distinct values are binned exactly (splits identical to the
    exact search), wider features snap to quantile bin edges."""

    def validate(self) -> None:
        if self.max_depth < 1:
            raise ModelConfigError("max_depth must be >= 1")
        if self.min_samples_leaf < 1:
            raise ModelConfigError("min_samples_leaf must be >= 1")
        if self.reg_lambda < 0:
            raise ModelConfigError("reg_lambda must be non-negative")
        if self.max_bins < 2:
            raise ModelConfigError("max_bins must be >= 2")


class GradientRegressionTree:
    """A single regression tree fitted to gradients/hessians.

    Parameters
    ----------
    config:
        Tree hyper-parameters (depth, regularisation, minimum leaf size).
    backend:
        ``"node"`` for the pointer-based reference walks, ``"array"`` for the
        flattened :class:`~repro.ml.forest.TreeTensor` kernels with the exact
        vectorized split search, ``"hist"`` for the histogram split search of
        :mod:`repro.ml.hist` (thresholds snap to at most
        ``config.max_bins`` bins per feature; identical to the exact search
        while every feature fits in the bin budget), or ``"auto"`` (default)
        to pick by row count.  The node and array backends fit bit-identical
        trees and produce bit-identical predictions
        (``tests/test_ml_forest.py``); the hist backend's exactness regime is
        arbitrated by ``tests/test_ml_hist.py``.
    """

    def __init__(
        self, config: RegressionTreeConfig | None = None, backend: str = "auto"
    ) -> None:
        self.config = config or RegressionTreeConfig()
        self.config.validate()
        self.backend = backend
        self._resolved_backend = resolve_ml_backend(backend)
        self.root_: _TreeNode | None = None
        self.tensor_: TreeTensor | None = None
        self.num_leaves_: int = 0

    def fit(
        self,
        X: np.ndarray,
        gradients: np.ndarray,
        hessians: np.ndarray,
        binned: "object | None" = None,
    ) -> "GradientRegressionTree":
        """Grow the tree greedily on ``(X, gradients, hessians)``.

        ``binned`` optionally supplies a prebuilt, row-aligned
        :class:`~repro.ml.hist.BinnedDataset` so a boosting loop can
        quantize once per fit instead of once per tree; ignored by the
        non-hist backends.
        """
        X = np.asarray(X, dtype=np.float64)
        gradients = np.asarray(gradients, dtype=np.float64)
        hessians = np.asarray(hessians, dtype=np.float64)
        if X.ndim != 2:
            raise DimensionMismatchError(f"X must be 2-D, got shape {X.shape}")
        if gradients.shape != (X.shape[0],) or hessians.shape != (X.shape[0],):
            raise DimensionMismatchError(
                "gradients and hessians must be 1-D with one entry per sample"
            )
        self.num_leaves_ = 0
        self.tensor_ = None
        self._resolved_backend = resolve_ml_backend(self.backend, num_rows=X.shape[0])
        indices = np.arange(X.shape[0])
        if self._resolved_backend == "hist":
            from repro.ml.hist import BinnedDataset, HistTreeGrower

            if binned is None:
                binned = BinnedDataset.from_matrix(X, self.config.max_bins)
            elif binned.codes.shape[0] != X.shape[0]:
                raise DimensionMismatchError(
                    f"binned dataset has {binned.codes.shape[0]} rows but X has "
                    f"{X.shape[0]}; pass a row-aligned BinnedDataset.subset"
                )
            grower = HistTreeGrower(binned, gradients, hessians, self.config)
            self.root_ = grower.grow(self, indices)
            self.tensor_ = TreeTensor.from_root(self.root_)
            return self
        self.root_ = self._build(X, gradients, hessians, indices, depth=0)
        if self._resolved_backend == "array":
            self.tensor_ = TreeTensor.from_root(self.root_)
        return self

    # ------------------------------------------------------------------ growth
    def _build(
        self,
        X: np.ndarray,
        gradients: np.ndarray,
        hessians: np.ndarray,
        indices: np.ndarray,
        depth: int,
    ) -> _TreeNode:
        node = _TreeNode(depth=depth)
        grad_sum = gradients[indices].sum()
        hess_sum = hessians[indices].sum()
        node.value = self._leaf_weight(grad_sum, hess_sum)

        if depth >= self.config.max_depth or len(indices) < 2 * self.config.min_samples_leaf:
            return self._finalise_leaf(node)

        split = self._best_split(X, gradients, hessians, indices, grad_sum, hess_sum)
        if split is None:
            return self._finalise_leaf(node)

        feature, threshold, left_idx, right_idx = split
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(X, gradients, hessians, left_idx, depth + 1)
        node.right = self._build(X, gradients, hessians, right_idx, depth + 1)
        return node

    def _finalise_leaf(self, node: _TreeNode) -> _TreeNode:
        node.feature = None
        node.leaf_id = self.num_leaves_
        self.num_leaves_ += 1
        return node

    def _best_split(
        self,
        X: np.ndarray,
        gradients: np.ndarray,
        hessians: np.ndarray,
        indices: np.ndarray,
        grad_sum: float,
        hess_sum: float,
    ) -> tuple[int, float, np.ndarray, np.ndarray] | None:
        """Exact greedy split search over all features and thresholds.

        The array backend runs the same search with the inner position loop
        vectorized (:func:`repro.ml.forest.best_split_array`); chosen splits
        are bit-identical.
        """
        if self._resolved_backend == "array":
            return best_split_array(
                X, gradients, hessians, indices, grad_sum, hess_sum, self.config
            )
        lam = self.config.reg_lambda
        parent_score = grad_sum * grad_sum / (hess_sum + lam)
        best_gain = self.config.min_gain
        best: tuple[int, float, np.ndarray, np.ndarray] | None = None

        for feature in range(X.shape[1]):
            values = X[indices, feature]
            order = np.argsort(values, kind="mergesort")
            sorted_idx = indices[order]
            sorted_values = values[order]
            grad_cum = np.cumsum(gradients[sorted_idx])
            hess_cum = np.cumsum(hessians[sorted_idx])

            for position in range(
                self.config.min_samples_leaf - 1,
                len(sorted_idx) - self.config.min_samples_leaf,
            ):
                # Cannot split between equal feature values.
                if sorted_values[position] == sorted_values[position + 1]:
                    continue
                grad_left = grad_cum[position]
                hess_left = hess_cum[position]
                grad_right = grad_sum - grad_left
                hess_right = hess_sum - hess_left
                gain = 0.5 * (
                    grad_left * grad_left / (hess_left + lam)
                    + grad_right * grad_right / (hess_right + lam)
                    - parent_score
                ) - self.config.gamma
                if gain > best_gain:
                    threshold = 0.5 * (sorted_values[position] + sorted_values[position + 1])
                    best_gain = gain
                    best = (
                        feature,
                        float(threshold),
                        sorted_idx[: position + 1],
                        sorted_idx[position + 1 :],
                    )
        return best

    def _leaf_weight(self, grad_sum: float, hess_sum: float) -> float:
        return float(-grad_sum / (hess_sum + self.config.reg_lambda))

    # --------------------------------------------------------------- inference
    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted leaf weight for each row of ``X``."""
        if self.tensor_ is not None:
            return self.tensor_.predict(self._check_inference_input(X))
        leaves = self._apply_nodes(X)
        return np.array([leaf.value for leaf in leaves], dtype=np.float64)

    def apply(self, X: np.ndarray) -> np.ndarray:
        """Leaf index (0-based, per tree) each row of ``X`` falls into."""
        if self.tensor_ is not None:
            return self.tensor_.apply(self._check_inference_input(X))
        leaves = self._apply_nodes(X)
        return np.array([leaf.leaf_id for leaf in leaves], dtype=np.int64)

    def leaf_values(self, X: np.ndarray) -> np.ndarray:
        """Leaf weight each row falls into (same as :meth:`predict`)."""
        return self.predict(X)

    def tensor(self) -> TreeTensor:
        """The flattened form of the fitted tree (built lazily on the node
        backend, cached after :meth:`fit` on the array backend)."""
        if self.root_ is None:
            raise NotFittedError(self)
        if self.tensor_ is None:
            self.tensor_ = TreeTensor.from_root(self.root_)
        return self.tensor_

    def _check_inference_input(self, X: np.ndarray) -> np.ndarray:
        if self.root_ is None:
            raise NotFittedError(self)
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        return X

    def _apply_nodes(self, X: np.ndarray) -> list[_TreeNode]:
        X = self._check_inference_input(X)
        leaves: list[_TreeNode] = []
        for row in X:
            node = self.root_
            while not node.is_leaf:
                assert node.left is not None and node.right is not None
                node = node.left if row[node.feature] <= node.threshold else node.right
            leaves.append(node)
        return leaves

    @property
    def depth(self) -> int:
        """Actual depth of the grown tree."""
        if self.root_ is None:
            raise NotFittedError(self)
        if self.tensor_ is not None:
            return self.tensor_.depth()
        return _node_depth(self.root_)


def _node_depth(node: _TreeNode) -> int:
    """Depth of the subtree under ``node``, via an iterative sweep.

    Deep unbalanced trees (``max_depth`` in the thousands) would blow the
    interpreter's recursion limit under the old recursive formulation; the
    explicit stack handles any depth in O(nodes).
    """
    deepest = 0
    stack: list[tuple[_TreeNode, int]] = [(node, 0)]
    while stack:
        current, depth = stack.pop()
        if current.is_leaf:
            if depth > deepest:
                deepest = depth
            continue
        assert current.left is not None and current.right is not None
        stack.append((current.left, depth + 1))
        stack.append((current.right, depth + 1))
    return deepest
