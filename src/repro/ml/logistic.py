"""Multinomial logistic regression (the paper's Phase III edge classifier).

The combination phase of LoCEC feeds the per-edge feature vector
``f_{⟨u,v⟩} = [tightness(u,C_u), tightness(v,C_v), r_{C_u}, r_{C_v}]`` (Eq. 4)
into a logistic-regression model to produce the final edge label.  The
implementation is a plain softmax regression trained by full-batch gradient
descent with L2 regularisation — the feature dimension is tiny (2 + 2·|L|),
so nothing fancier is warranted.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ModelConfigError
from repro.ml.base import check_fitted, check_X_y, one_hot, softmax


class LogisticRegression:
    """Multinomial (softmax) logistic regression.

    Parameters
    ----------
    learning_rate:
        Gradient-descent step size.
    num_iterations:
        Number of full-batch gradient steps.
    l2:
        L2 regularisation strength applied to the weights (not the bias).
    num_classes:
        Number of classes; inferred from the training labels when ``None``.
    seed:
        Seed for the (tiny) random weight initialisation.

    Examples
    --------
    >>> import numpy as np
    >>> X = np.array([[0.0, 1.0], [0.1, 0.9], [1.0, 0.0], [0.9, 0.1]])
    >>> y = np.array([0, 0, 1, 1])
    >>> model = LogisticRegression(num_iterations=500).fit(X, y)
    >>> model.predict(np.array([[0.95, 0.05]]))[0]
    1
    """

    def __init__(
        self,
        learning_rate: float = 0.5,
        num_iterations: int = 300,
        l2: float = 1e-4,
        num_classes: int | None = None,
        seed: int = 0,
    ) -> None:
        if learning_rate <= 0:
            raise ModelConfigError("learning_rate must be positive")
        if num_iterations <= 0:
            raise ModelConfigError("num_iterations must be positive")
        if l2 < 0:
            raise ModelConfigError("l2 must be non-negative")
        self.learning_rate = learning_rate
        self.num_iterations = num_iterations
        self.l2 = l2
        self.num_classes = num_classes
        self.seed = seed
        self.weights_: np.ndarray | None = None
        self.bias_: np.ndarray | None = None
        self.loss_history_: list[float] = []

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LogisticRegression":
        """Fit the model on features ``X`` (n × d) and integer labels ``y``."""
        X, y = check_X_y(X, y)
        num_classes = self.num_classes or int(y.max()) + 1
        if num_classes < 2:
            raise ModelConfigError("need at least two classes")
        n_samples, n_features = X.shape
        rng = np.random.default_rng(self.seed)
        weights = rng.normal(scale=0.01, size=(n_features, num_classes))
        bias = np.zeros(num_classes)
        targets = one_hot(y, num_classes)

        self.loss_history_ = []
        for _ in range(self.num_iterations):
            probabilities = softmax(X @ weights + bias)
            error = probabilities - targets
            grad_weights = X.T @ error / n_samples + self.l2 * weights
            grad_bias = error.mean(axis=0)
            weights -= self.learning_rate * grad_weights
            bias -= self.learning_rate * grad_bias
            loss = self._loss(probabilities, targets, weights)
            self.loss_history_.append(loss)

        self.weights_ = weights
        self.bias_ = bias
        self._num_classes = num_classes
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Class-probability matrix of shape ``(n_samples, n_classes)``."""
        check_fitted(self, "weights_")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        return softmax(X @ self.weights_ + self.bias_)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted class index for each row of ``X``."""
        return np.argmax(self.predict_proba(X), axis=1)

    def _loss(
        self, probabilities: np.ndarray, targets: np.ndarray, weights: np.ndarray
    ) -> float:
        cross_entropy = -np.mean(
            np.sum(targets * np.log(np.clip(probabilities, 1e-12, 1.0)), axis=1)
        )
        return float(cross_entropy + 0.5 * self.l2 * np.sum(weights**2))
