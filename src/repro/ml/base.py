"""Common estimator protocol for the from-scratch ML substrate.

All classifiers in :mod:`repro.ml` follow a small fit/predict protocol so the
LoCEC pipeline can swap the community classifier (GBDT vs CommCNN) without
special-casing:

* ``fit(X, y)`` — train on a 2-D (or, for CNNs, 3-D) feature array and an
  integer label vector; returns ``self``.
* ``predict_proba(X)`` — return an ``(n_samples, n_classes)`` array of class
  probabilities.
* ``predict(X)`` — return the argmax class indices.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from repro.exceptions import DimensionMismatchError, NotFittedError


@runtime_checkable
class Classifier(Protocol):
    """Structural protocol every classifier in the library satisfies."""

    def fit(self, X: np.ndarray, y: np.ndarray) -> "Classifier":  # pragma: no cover
        ...

    def predict_proba(self, X: np.ndarray) -> np.ndarray:  # pragma: no cover
        ...

    def predict(self, X: np.ndarray) -> np.ndarray:  # pragma: no cover
        ...


def check_fitted(estimator: object, attribute: str) -> None:
    """Raise :class:`NotFittedError` unless ``estimator.attribute`` is set."""
    if getattr(estimator, attribute, None) is None:
        raise NotFittedError(estimator)


def check_X_y(X: np.ndarray, y: np.ndarray, min_dim: int = 2) -> tuple[np.ndarray, np.ndarray]:
    """Validate and coerce a feature array and label vector.

    Ensures ``X`` is a float array with at least ``min_dim`` dimensions, ``y``
    is a 1-D integer array, and their first dimensions agree.
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y)
    if X.ndim < min_dim:
        raise DimensionMismatchError(
            f"X must have at least {min_dim} dimensions, got shape {X.shape}"
        )
    if y.ndim != 1:
        raise DimensionMismatchError(f"y must be 1-dimensional, got shape {y.shape}")
    if X.shape[0] != y.shape[0]:
        raise DimensionMismatchError(
            f"X and y disagree on sample count: {X.shape[0]} vs {y.shape[0]}"
        )
    if X.shape[0] == 0:
        raise DimensionMismatchError("cannot fit on an empty dataset")
    return X, y.astype(np.int64, copy=False)


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    shifted = logits - np.max(logits, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def one_hot(y: np.ndarray, num_classes: int) -> np.ndarray:
    """One-hot encode an integer label vector."""
    y = np.asarray(y, dtype=np.int64)
    if y.size and (y.min() < 0 or y.max() >= num_classes):
        raise DimensionMismatchError(
            f"labels must lie in [0, {num_classes}), got range "
            f"[{y.min()}, {y.max()}]"
        )
    encoded = np.zeros((y.shape[0], num_classes), dtype=np.float64)
    encoded[np.arange(y.shape[0]), y] = 1.0
    return encoded
