"""ProbWP baseline — structural-similarity label propagation (Aggarwal et al., ICDE 2016).

The comparator the paper denotes **ProbWP** propagates known edge labels to
unlabeled edges using structural similarity estimated with min-hash:

1. Every node gets a min-hash signature of its neighbour set (the paper uses
   20 hash functions, which we keep as the default).
2. For an unlabeled edge ``⟨u, v⟩``, the top-``k`` nodes most similar to ``u``
   form ``S_u`` and likewise ``S_v`` for ``v``.
3. The labeled edges with one endpoint in ``S_u`` and the other in ``S_v``
   vote; the dominant class label wins.  When no such labeled edge exists the
   vote falls back to labeled edges incident to ``S_u ∪ S_v`` and finally to
   the global majority class.

The method's characteristic behaviour — strong when a large share of edges is
labeled, collapsing when labels are scarce — is exactly what Figure 11
demonstrates, and emerges naturally from this construction.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.exceptions import NotFittedError, PipelineError
from repro.graph.graph import Graph
from repro.types import Edge, LabeledEdge, Node, RelationType, canonical_edge


class ProbWP:
    """Min-hash structural-similarity label propagation for edge classification.

    Parameters
    ----------
    num_hashes:
        Number of min-hash functions (paper setting: 20).
    top_k:
        Size of the structural-similarity neighbourhoods ``S_u`` / ``S_v``.
    seed:
        Seed of the random hash functions.
    """

    def __init__(self, num_hashes: int = 20, top_k: int = 10, seed: int = 0) -> None:
        if num_hashes < 1 or top_k < 1:
            raise PipelineError("num_hashes and top_k must be positive")
        self.num_hashes = num_hashes
        self.top_k = top_k
        self.seed = seed
        self._graph: Graph | None = None
        self._signatures: dict[Node, np.ndarray] | None = None
        self._labeled: dict[Edge, RelationType] = {}
        self._incident_labels: dict[Node, list[RelationType]] = {}
        self._majority: RelationType = RelationType.FAMILY

    # --------------------------------------------------------------------- fit
    def fit(self, graph: Graph, labeled_edges: list[LabeledEdge]) -> "ProbWP":
        """Index the graph structure and the available edge labels."""
        if not labeled_edges:
            raise PipelineError("ProbWP requires at least one labeled edge")
        self._graph = graph
        self._signatures = self._compute_signatures(graph)
        self._labeled = {item.edge: item.label for item in labeled_edges}
        self._incident_labels = {}
        for (u, v), label in self._labeled.items():
            self._incident_labels.setdefault(u, []).append(label)
            self._incident_labels.setdefault(v, []).append(label)
        counts = Counter(self._labeled.values())
        self._majority = counts.most_common(1)[0][0]
        return self

    def _compute_signatures(self, graph: Graph) -> dict[Node, np.ndarray]:
        """Min-hash signature of every node's neighbour set."""
        rng = np.random.default_rng(self.seed)
        node_list = list(graph.nodes())
        node_index = {node: index for index, node in enumerate(node_list)}
        # Universal hash functions h_i(x) = (a_i * x + b_i) mod p.
        prime = 2_147_483_647
        coeff_a = rng.integers(1, prime, size=self.num_hashes, dtype=np.int64)
        coeff_b = rng.integers(0, prime, size=self.num_hashes, dtype=np.int64)

        signatures: dict[Node, np.ndarray] = {}
        for node in node_list:
            neighbors = graph.neighbors(node)
            if not neighbors:
                signatures[node] = np.full(self.num_hashes, prime, dtype=np.int64)
                continue
            ids = np.array([node_index[other] for other in neighbors], dtype=np.int64)
            hashed = (coeff_a[:, None] * ids[None, :] + coeff_b[:, None]) % prime
            signatures[node] = hashed.min(axis=1)
        return signatures

    # --------------------------------------------------------------- inference
    def structural_similarity(self, u: Node, v: Node) -> float:
        """Estimated Jaccard similarity of the neighbour sets of ``u`` and ``v``."""
        if self._signatures is None:
            raise NotFittedError(self)
        su, sv = self._signatures.get(u), self._signatures.get(v)
        if su is None or sv is None:
            return 0.0
        return float(np.mean(su == sv))

    def _similar_nodes(self, node: Node) -> list[Node]:
        """Top-``k`` nodes most structurally similar to ``node`` (among 2-hop candidates)."""
        assert self._graph is not None
        candidates: set[Node] = set()
        for neighbor in self._graph.neighbors(node):
            candidates.add(neighbor)
            candidates.update(self._graph.neighbors(neighbor))
        candidates.discard(node)
        scored = sorted(
            ((self.structural_similarity(node, other), repr(other), other) for other in candidates),
            key=lambda item: (-item[0], item[1]),
        )
        return [other for _, _, other in scored[: self.top_k]]

    def predict_edge(self, u: Node, v: Node) -> RelationType:
        """Predict the label of a single edge by neighbourhood voting."""
        if self._graph is None:
            raise NotFittedError(self)
        known = self._labeled.get(canonical_edge(u, v))
        if known is not None:
            return known
        similar_u = set(self._similar_nodes(u)) | {u}
        similar_v = set(self._similar_nodes(v)) | {v}

        votes: Counter[RelationType] = Counter()
        for (a, b), label in self._labeled.items():
            if (a in similar_u and b in similar_v) or (a in similar_v and b in similar_u):
                votes[label] += 1
        if not votes:
            for node in similar_u | similar_v:
                for label in self._incident_labels.get(node, []):
                    votes[label] += 1
        if not votes:
            return self._majority
        best = max(votes.values())
        return min((label for label, count in votes.items() if count == best), key=int)

    def predict(self, edges: list[Edge]) -> list[RelationType]:
        """Predict labels for a batch of edges."""
        return [self.predict_edge(u, v) for u, v in edges]
