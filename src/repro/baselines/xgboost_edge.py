"""Plain XGBoost edge-classification baseline.

The paper's third comparator trains a gradient-boosted tree model directly on
per-edge features: "the input feature consists of the individual features of
two end users and the interaction feature between them".  Because ~60 % of
friend pairs have no interaction at all, this baseline suffers exactly the
sparsity problem LoCEC was designed to avoid — its recall in Table IV is the
lowest of all methods.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import NotFittedError, PipelineError
from repro.graph.features import NodeFeatureStore
from repro.graph.interactions import InteractionStore
from repro.ml.gbdt import GradientBoostedClassifier
from repro.types import Edge, LabeledEdge, RelationType, canonical_edge


class XGBoostEdgeClassifier:
    """GBDT trained directly on raw per-edge features.

    Parameters
    ----------
    num_rounds, max_depth, learning_rate, seed:
        Hyper-parameters of the underlying gradient-boosted trees.
    """

    def __init__(
        self,
        num_rounds: int = 40,
        max_depth: int = 4,
        learning_rate: float = 0.3,
        seed: int = 0,
    ) -> None:
        self.num_rounds = num_rounds
        self.max_depth = max_depth
        self.learning_rate = learning_rate
        self.seed = seed
        self._features: NodeFeatureStore | None = None
        self._interactions: InteractionStore | None = None
        self._model: GradientBoostedClassifier | None = None

    def fit(
        self,
        features: NodeFeatureStore,
        interactions: InteractionStore,
        labeled_edges: list[LabeledEdge],
    ) -> "XGBoostEdgeClassifier":
        """Train on the raw features of the labeled edges."""
        if not labeled_edges:
            raise PipelineError("XGBoostEdgeClassifier requires at least one labeled edge")
        self._features = features
        self._interactions = interactions
        X = self._edge_features([item.edge for item in labeled_edges])
        y = np.array([int(item.label) for item in labeled_edges])
        self._model = GradientBoostedClassifier(
            num_rounds=self.num_rounds,
            max_depth=self.max_depth,
            learning_rate=self.learning_rate,
            num_classes=len(RelationType.classification_targets()),
            seed=self.seed,
        )
        self._model.fit(X, y)
        return self

    def _edge_features(self, edges: list[Edge]) -> np.ndarray:
        """[f_u, f_v, I_uv] raw feature vector per edge."""
        assert self._features is not None and self._interactions is not None
        rows: list[np.ndarray] = []
        for u, v in edges:
            first, second = canonical_edge(u, v)
            rows.append(
                np.concatenate(
                    [
                        self._features.get_or_default(first),
                        self._features.get_or_default(second),
                        self._interactions.vector(first, second),
                    ]
                )
            )
        return np.vstack(rows)

    def predict_proba(self, edges: list[Edge]) -> np.ndarray:
        if self._model is None:
            raise NotFittedError(self)
        return self._model.predict_proba(self._edge_features(edges))

    def predict(self, edges: list[Edge]) -> list[RelationType]:
        """Predicted relationship type for each edge."""
        probabilities = self.predict_proba(edges)
        return [RelationType(int(index)) for index in np.argmax(probabilities, axis=1)]
