"""The "Relation" advertising baseline (Figure 14).

The paper compares LoCEC-based ad targeting against a simple **Relation**
policy: take the friends of the advertiser-provided seed users, score them
with the same click-through-rate (CTR) model, and pick the highest-scoring
ones regardless of relationship type.  LoCEC-CNN instead restricts the
candidate pool to friends of the type that matches the ad category (family
for furniture, schoolmates for mobile games) before applying the same CTR
scoring, which is what produces the higher click and interact rates.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.graph.graph import Graph
from repro.types import Edge, Node, RelationType, canonical_edge

CtrScorer = Callable[[Node], float]


def relation_targeting(
    graph: Graph,
    seeds: Sequence[Node],
    ctr_scorer: CtrScorer,
    audience_size: int,
) -> list[Node]:
    """The Relation baseline: highest-CTR friends of the seeds, any type."""
    candidates = _friends_of(graph, seeds)
    ranked = sorted(candidates, key=lambda node: (-ctr_scorer(node), repr(node)))
    return ranked[:audience_size]


def type_aware_targeting(
    graph: Graph,
    seeds: Sequence[Node],
    ctr_scorer: CtrScorer,
    audience_size: int,
    edge_labels: dict[Edge, RelationType],
    target_type: RelationType,
) -> list[Node]:
    """LoCEC-style targeting: friends connected to a seed by an edge of ``target_type``.

    Falls back to the Relation pool when fewer than ``audience_size``
    type-matching friends exist (the production system would widen the
    audience the same way rather than under-deliver).
    """
    seed_set = set(seeds)
    typed_candidates: set[Node] = set()
    for seed in seeds:
        for friend in graph.neighbors(seed):
            if friend in seed_set:
                continue
            if edge_labels.get(canonical_edge(seed, friend)) == target_type:
                typed_candidates.add(friend)
    ranked = sorted(typed_candidates, key=lambda node: (-ctr_scorer(node), repr(node)))
    if len(ranked) >= audience_size:
        return ranked[:audience_size]
    # Fallback: top up from the untyped pool.
    fallback = [
        node
        for node in relation_targeting(graph, seeds, ctr_scorer, audience_size * 2)
        if node not in typed_candidates
    ]
    return (ranked + fallback)[:audience_size]


def _friends_of(graph: Graph, seeds: Iterable[Node]) -> set[Node]:
    seed_set = set(seeds)
    friends: set[Node] = set()
    for seed in seed_set:
        if seed in graph:
            friends.update(graph.neighbors(seed))
    return friends - seed_set
