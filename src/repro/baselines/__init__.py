"""Comparative methods implemented alongside LoCEC."""

from repro.baselines.economix import Economix
from repro.baselines.group_name_rules import (
    GroupNamePrediction,
    GroupNameRuleClassifier,
    classify_group_name,
)
from repro.baselines.probwp import ProbWP
from repro.baselines.relation_targeting import relation_targeting, type_aware_targeting
from repro.baselines.xgboost_edge import XGBoostEdgeClassifier

__all__ = [
    "ProbWP",
    "Economix",
    "XGBoostEdgeClassifier",
    "GroupNameRuleClassifier",
    "GroupNamePrediction",
    "classify_group_name",
    "relation_targeting",
    "type_aware_targeting",
]
