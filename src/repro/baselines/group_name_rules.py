"""Rule-based relationship inference from chat-group names (Table II).

Section II of the paper describes a mining heuristic: if two friends share a
chat group whose name matches a type-indicative pattern ("X Department in X
Company", "Class X in X Middle School", ...), the pair is assigned that type.
Precision is high (0.7–0.93) but recall is tiny because most groups have
generic names and ~20 % of friend pairs share no group at all.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.synthetic.groups import GroupCollection
from repro.types import Edge, RelationType, canonical_edge

#: Name patterns that indicate a relationship type.  The synthetic generator's
#: indicative templates are matched by these patterns (as real group names
#: would be matched by the production rule set).
NAME_PATTERNS: dict[RelationType, list[re.Pattern[str]]] = {
    RelationType.FAMILY: [
        re.compile(r"\bfamily\b", re.IGNORECASE),
        re.compile(r"\bhousehold\b", re.IGNORECASE),
    ],
    RelationType.COLLEAGUE: [
        re.compile(r"\bdepartment\b", re.IGNORECASE),
        re.compile(r"\bcompany\b", re.IGNORECASE),
        re.compile(r"\bproject team\b", re.IGNORECASE),
        re.compile(r"\ball-hands\b", re.IGNORECASE),
    ],
    RelationType.SCHOOLMATE: [
        re.compile(r"\bclass of\b", re.IGNORECASE),
        re.compile(r"\bschool\b", re.IGNORECASE),
        re.compile(r"\buniversity\b", re.IGNORECASE),
        re.compile(r"\balumni\b", re.IGNORECASE),
        re.compile(r"\bclassmates\b", re.IGNORECASE),
    ],
}


def classify_group_name(name: str) -> RelationType | None:
    """Infer a relationship type from a group name, or ``None`` when generic."""
    for relation, patterns in NAME_PATTERNS.items():
        if any(pattern.search(name) for pattern in patterns):
            return relation
    return None


@dataclass(frozen=True)
class GroupNamePrediction:
    """A pair prediction produced by the rule miner."""

    edge: Edge
    label: RelationType
    group_name: str


class GroupNameRuleClassifier:
    """Classify friend pairs by the names of their common chat groups."""

    def __init__(self, groups: GroupCollection) -> None:
        self.groups = groups

    def predict_pairs(self) -> dict[Edge, GroupNamePrediction]:
        """All pairs that can be classified by an indicative common group.

        When a pair appears in several indicative groups the first (lowest
        group id) match wins, which keeps the output deterministic.
        """
        predictions: dict[Edge, GroupNamePrediction] = {}
        for group in sorted(self.groups, key=lambda item: item.group_id):
            label = classify_group_name(group.name)
            if label is None:
                continue
            for pair in group.member_pairs():
                if pair not in predictions:
                    predictions[pair] = GroupNamePrediction(
                        edge=pair, label=label, group_name=group.name
                    )
        return predictions

    def evaluate(
        self, true_types: dict[Edge, RelationType]
    ) -> dict[RelationType, tuple[float, float, float]]:
        """Table II: precision / recall / F1 per relationship type.

        ``true_types`` maps every friend-pair edge to its ground-truth type;
        recall is measured against all pairs of each type, which is what makes
        it so low (most pairs are simply never covered by an indicative group).
        """
        predictions = self.predict_pairs()
        results: dict[RelationType, tuple[float, float, float]] = {}
        for relation in RelationType.classification_targets():
            tp = sum(
                1
                for edge, prediction in predictions.items()
                if prediction.label == relation
                and true_types.get(canonical_edge(*edge)) == relation
            )
            fp = sum(
                1
                for edge, prediction in predictions.items()
                if prediction.label == relation
                and true_types.get(canonical_edge(*edge)) not in (None, relation)
            )
            total_true = sum(1 for label in true_types.values() if label == relation)
            fn = total_true - tp
            precision = tp / (tp + fp) if tp + fp else 0.0
            recall = tp / (tp + fn) if tp + fn else 0.0
            f1 = (
                2 * precision * recall / (precision + recall)
                if precision + recall
                else 0.0
            )
            results[relation] = (precision, recall, f1)
        return results
