"""Economix baseline — matrix factorisation over edge content and structure
(Aggarwal et al., ICDE 2017).

The original method treats every edge as a *document* whose words come from
the textual content exchanged on that edge, and factorises the edge × word
matrix jointly with structural information to propagate labels.  Following
the paper's adaptation ("we consider each interaction together with the
number of interaction times as a word"), our edge documents are built from
interaction-dimension tokens, and the structural signal is added as
neighbourhood-overlap features:

1. Build the edge × token count matrix (tokens = interaction dimensions,
   binned counts, plus coarse structural buckets).
2. Factorise it with a truncated SVD into ``rank`` latent factors.
3. Train a multinomial logistic-regression model on the latent factors of the
   labeled edges and predict the rest.

This keeps the defining characteristics of Economix — it exploits both
content and structure, benefits from more labels, and outperforms the plain
feature-vector XGBoost baseline when interactions are sparse — at prototype
scale.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import NotFittedError, PipelineError
from repro.graph.graph import Graph
from repro.graph.interactions import InteractionStore
from repro.graph.metrics import jaccard_similarity
from repro.ml.logistic import LogisticRegression
from repro.types import Edge, LabeledEdge, RelationType


class Economix:
    """Matrix-factorisation edge classifier over interaction "documents".

    Parameters
    ----------
    rank:
        Number of latent factors kept from the SVD.
    count_bins:
        Interaction counts are tokenised into this many logarithmic bins.
    lr_iterations:
        Training iterations of the logistic-regression head.
    seed:
        Seed of the logistic-regression initialisation.
    """

    def __init__(
        self,
        rank: int = 16,
        count_bins: int = 4,
        lr_iterations: int = 300,
        seed: int = 0,
    ) -> None:
        if rank < 1 or count_bins < 1:
            raise PipelineError("rank and count_bins must be positive")
        self.rank = rank
        self.count_bins = count_bins
        self.lr_iterations = lr_iterations
        self.seed = seed
        self._graph: Graph | None = None
        self._interactions: InteractionStore | None = None
        self._components: np.ndarray | None = None
        self._model: LogisticRegression | None = None

    # --------------------------------------------------------------------- fit
    def fit(
        self,
        graph: Graph,
        interactions: InteractionStore,
        labeled_edges: list[LabeledEdge],
    ) -> "Economix":
        """Factorise the edge-document matrix and train the label model."""
        if not labeled_edges:
            raise PipelineError("Economix requires at least one labeled edge")
        self._graph = graph
        self._interactions = interactions

        train_edges = [item.edge for item in labeled_edges]
        labels = np.array([int(item.label) for item in labeled_edges])

        documents = self._edge_documents(train_edges)
        # Truncated SVD of the (centred) document matrix gives the latent basis.
        mean = documents.mean(axis=0)
        centered = documents - mean
        _, _, vt = np.linalg.svd(centered, full_matrices=False)
        rank = min(self.rank, vt.shape[0])
        self._components = vt[:rank]
        self._document_mean = mean

        latent = centered @ self._components.T
        self._model = LogisticRegression(
            num_iterations=self.lr_iterations,
            num_classes=len(RelationType.classification_targets()),
            seed=self.seed,
        )
        self._model.fit(latent, labels)
        return self

    # --------------------------------------------------------------- documents
    def _edge_documents(self, edges: list[Edge]) -> np.ndarray:
        """Token-count matrix of edge "documents" (interactions + structure)."""
        assert self._graph is not None and self._interactions is not None
        num_dims = self._interactions.num_dims
        # Token layout: interaction-count bins, Jaccard-overlap buckets,
        # common-neighbour buckets, endpoint-degree buckets.
        num_tokens = num_dims * self.count_bins + 4 + 5 + 4
        matrix = np.zeros((len(edges), num_tokens), dtype=np.float64)
        for row, (u, v) in enumerate(edges):
            vector = self._interactions.vector(u, v)
            for dim in range(num_dims):
                count = vector[dim]
                if count <= 0:
                    continue
                bin_index = min(int(np.log2(count + 1)), self.count_bins - 1)
                matrix[row, dim * self.count_bins + bin_index] += 1.0
            # Structural tokens: neighbourhood overlap, shared neighbours and
            # degree scale — the "structure" half of the Economix factorisation.
            offset = num_dims * self.count_bins
            if u in self._graph and v in self._graph:
                overlap = jaccard_similarity(self._graph, u, v)
                common = len(
                    self._graph.neighbors(u) & self._graph.neighbors(v)
                )
                degree_sum = self._graph.degree(u) + self._graph.degree(v)
            else:
                overlap, common, degree_sum = 0.0, 0, 0
            matrix[row, offset + min(int(overlap * 4), 3)] += 1.0
            common_bucket = min(int(np.log2(common + 1)), 4)
            matrix[row, offset + 4 + common_bucket] += 1.0
            degree_bucket = min(int(np.log2(degree_sum + 1)) // 2, 3)
            matrix[row, offset + 9 + degree_bucket] += 1.0
        return matrix

    # --------------------------------------------------------------- inference
    def predict_proba(self, edges: list[Edge]) -> np.ndarray:
        if self._model is None or self._components is None:
            raise NotFittedError(self)
        documents = self._edge_documents(edges)
        latent = (documents - self._document_mean) @ self._components.T
        return self._model.predict_proba(latent)

    def predict(self, edges: list[Edge]) -> list[RelationType]:
        """Predicted relationship type for each edge."""
        probabilities = self.predict_proba(edges)
        return [RelationType(int(index)) for index in np.argmax(probabilities, axis=1)]
