"""``# repro-lint: disable=...`` suppression parsing.

Two forms, both comment-based so they survive formatters:

* line suppression — ``some_call()  # repro-lint: disable=DET001`` waives
  the named rule(s) for findings on that physical line;
* file suppression — a standalone ``# repro-lint: disable-file=NPY002``
  comment anywhere in the file waives the rule(s) for the whole file.

Comments are found with :mod:`tokenize` (not a regex over raw lines) so a
``# repro-lint:`` inside a string literal never counts as a suppression.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Set

_DIRECTIVE = re.compile(
    r"#\s*repro-lint:\s*(disable|disable-file)\s*=\s*([A-Za-z0-9_,\s]+)"
)


@dataclass
class SuppressionIndex:
    """Suppressions of one source file, queryable per (line, rule)."""

    by_line: Dict[int, Set[str]] = field(default_factory=dict)
    file_wide: Set[str] = field(default_factory=set)

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        if rule_id in self.file_wide:
            return True
        return rule_id in self.by_line.get(line, set())


def parse_suppressions(source: str) -> SuppressionIndex:
    """Extract every ``repro-lint`` directive from ``source``."""
    index = SuppressionIndex()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _DIRECTIVE.search(token.string)
            if not match:
                continue
            kind, raw_rules = match.groups()
            rules = {part.strip() for part in raw_rules.split(",") if part.strip()}
            if kind == "disable-file":
                index.file_wide |= rules
            else:
                index.by_line.setdefault(token.start[0], set()).update(rules)
    except tokenize.TokenizeError:  # pragma: no cover - defensive
        pass
    return index
