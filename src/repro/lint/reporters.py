"""Text and JSON reporters for lint results.

The text format is the ``path:line:col: RULE message`` convention every
editor and CI annotator understands; the JSON format is a stable,
schema-versioned document for tooling.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.lint.engine import LintResult

JSON_SCHEMA_VERSION = 1


def render_text(result: "LintResult") -> str:
    lines = []
    for finding in result.findings:
        lines.append(
            f"{finding.path}:{finding.line}:{finding.col}: "
            f"{finding.rule_id} {finding.message}"
        )
    for error in result.parse_errors:
        lines.append(f"error: could not parse {error}")
    noun = "finding" if len(result.findings) == 1 else "findings"
    lines.append(
        f"{len(result.findings)} {noun} in {result.files_checked} file(s) "
        f"({result.rules_run} rule(s))"
    )
    return "\n".join(lines)


def render_json(result: "LintResult") -> str:
    document = {
        "schema_version": JSON_SCHEMA_VERSION,
        "files_checked": result.files_checked,
        "rules_run": result.rules_run,
        "parse_errors": list(result.parse_errors),
        "findings": [
            {
                "rule": finding.rule_id,
                "path": finding.path,
                "line": finding.line,
                "col": finding.col,
                "message": finding.message,
            }
            for finding in result.findings
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)
