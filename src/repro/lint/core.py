"""Rule registry and the shared data model of the lint engine.

A rule is a class decorated with :func:`register`.  Module rules implement
``check_module(ctx)`` and run once per in-scope file; project rules
implement ``check_project(project)`` and run once over the whole tree (they
see every parsed module plus the test modules), which is what cross-file
contracts like backend-parity coverage need.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule_id)


@dataclass
class ModuleContext:
    """Everything a module rule may inspect about one source file."""

    path: str
    """Path relative to the lint root, with ``/`` separators."""
    tree: ast.Module
    source: str
    aliases: Dict[str, str] = field(default_factory=dict)
    """Local name → dotted origin for imports, e.g. ``{"np": "numpy",
    "perf_counter": "time.perf_counter"}``."""

    def qualified_name(self, node: ast.expr) -> str | None:
        """Resolve a Name/Attribute chain to a dotted name through the
        import aliases; ``None`` for anything dynamic."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.aliases.get(node.id, node.id)
        parts.append(root)
        return ".".join(reversed(parts))


@dataclass
class ProjectContext:
    """Whole-tree view handed to project rules."""

    root: str
    modules: List[ModuleContext]
    """Every parsed source module (the union of all rule scopes)."""
    test_modules: List[ModuleContext]
    """Parsed modules under the configured test roots."""
    backend_knobs: tuple = ("backend", "ml_backend", "nn_backend")
    """Knob attribute names the parity rule cross-references (from
    :class:`repro.lint.config.LintConfig.backend_knobs`)."""


class Rule:
    """Base class for lint rules.  Subclass, set the metadata class
    attributes, implement one of the two hooks, and decorate with
    :func:`register`."""

    rule_id: str = ""
    name: str = ""
    description: str = ""
    rationale: str = ""
    scope: str = "module"  # "module" | "project"

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError  # pragma: no cover - abstract hook

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        raise NotImplementedError  # pragma: no cover - abstract hook


_REGISTRY: Dict[str, Rule] = {}


def register(cls: type) -> type:
    """Class decorator: instantiate the rule and add it to the registry."""
    rule = cls()
    if not rule.rule_id:
        raise ValueError(f"rule {cls.__name__} must set rule_id")
    if rule.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.rule_id!r}")
    _REGISTRY[rule.rule_id] = rule
    return cls


def _ensure_rules_loaded() -> None:
    # Importing the rules package triggers every @register decorator.
    from repro.lint import rules as _rules  # noqa: F401


def all_rules() -> List[Rule]:
    """Every registered rule, ordered by id."""
    _ensure_rules_loaded()
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    _ensure_rules_loaded()
    return _REGISTRY[rule_id]


def build_alias_map(tree: ast.Module) -> Dict[str, str]:
    """Map local names to dotted import origins for one module."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                aliases[item.asname or item.name.split(".")[0]] = (
                    item.name if item.asname else item.name.split(".")[0]
                )
                if item.asname:
                    aliases[item.asname] = item.name
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for item in node.names:
                if item.name == "*":
                    continue
                aliases[item.asname or item.name] = f"{node.module}.{item.name}"
    return aliases


def iter_calls(tree: ast.Module) -> Iterable[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node
