"""Rule modules; importing this package registers every rule.

Adding a rule: create a module here, subclass :class:`repro.lint.core.Rule`,
decorate it with :func:`repro.lint.core.register`, import the module below,
and give it a scope in :mod:`repro.lint.config` plus fixtures under
``tests/lint_fixtures/``.  See ``docs/lint_rules.md`` for the full guide.
"""

from repro.lint.rules import determinism, mp_safety, numpy_hygiene, parity

__all__ = ["determinism", "mp_safety", "numpy_hygiene", "parity"]
