"""Determinism rules: no wall-clock or global-RNG reads in library code.

The reproduction's replay guarantees (bit-identical faulted vs clean runs,
zero-sleep fast tests, seeded experiment regeneration) hold only while every
time read goes through the injectable :class:`repro.clock.Clock` and every
random draw goes through a seeded ``random.Random`` / NumPy ``Generator``
instance.  A single ``time.time()`` or ``np.random.shuffle`` buried in a hot
path silently breaks all three; these rules make that a CI failure instead
of a debugging session.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.core import Finding, ModuleContext, Rule, iter_calls, register

#: Dotted call targets that read or advance the wall clock.
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.sleep",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: ``random`` module-level functions that mutate/read the hidden global
#: ``random.Random`` instance.  ``random.Random(seed)`` itself is fine.
GLOBAL_RANDOM_FUNCTIONS = frozenset(
    {
        "betavariate",
        "binomialvariate",
        "choice",
        "choices",
        "expovariate",
        "gammavariate",
        "gauss",
        "getrandbits",
        "getstate",
        "lognormvariate",
        "normalvariate",
        "paretovariate",
        "randbytes",
        "randint",
        "random",
        "randrange",
        "sample",
        "seed",
        "setstate",
        "shuffle",
        "triangular",
        "uniform",
        "vonmisesvariate",
        "weibullvariate",
    }
)

#: ``numpy.random`` attributes that are *not* global-state: seeded
#: construction surfaces.  Everything else on ``np.random`` either draws
#: from or seeds the legacy global RandomState.
NUMPY_RANDOM_ALLOWED = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)


@register
class WallClockRule(Rule):
    rule_id = "DET001"
    name = "no-wall-clock"
    description = (
        "time.time()/perf_counter()/sleep()/datetime.now() in library code; "
        "route through the injectable repro.clock.Clock"
    )
    rationale = (
        "Direct wall-clock reads break deterministic replay and force real "
        "sleeps into the zero-sleep fast test tier."
    )

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        for call in iter_calls(ctx.tree):
            qualified = ctx.qualified_name(call.func)
            if qualified in WALL_CLOCK_CALLS:
                yield Finding(
                    rule_id=self.rule_id,
                    path=ctx.path,
                    line=call.lineno,
                    col=call.col_offset,
                    message=(
                        f"wall-clock call {qualified}() — inject a "
                        "repro.clock.Clock (SystemClock in production, "
                        "FakeClock in tests) instead"
                    ),
                )


@register
class GlobalRandomRule(Rule):
    rule_id = "DET002"
    name = "no-global-rng"
    description = (
        "module-level random.*/np.random.* calls draw from hidden global "
        "state; use a seeded random.Random or np.random.default_rng"
    )
    rationale = (
        "Global-RNG draws make runs irreproducible and couple unrelated "
        "modules through shared hidden state."
    )

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        for call in iter_calls(ctx.tree):
            qualified = ctx.qualified_name(call.func)
            if qualified is None:
                continue
            parts = qualified.split(".")
            if parts[0] == "random" and len(parts) == 2:
                if parts[1] in GLOBAL_RANDOM_FUNCTIONS:
                    yield self._finding(ctx, call, qualified)
            elif (
                len(parts) >= 2
                and parts[0] == "numpy"
                and parts[1] == "random"
            ):
                attr = parts[2] if len(parts) > 2 else ""
                if attr and attr not in NUMPY_RANDOM_ALLOWED:
                    yield self._finding(ctx, call, qualified)

    def _finding(self, ctx: ModuleContext, call: ast.Call, name: str) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            path=ctx.path,
            line=call.lineno,
            col=call.col_offset,
            message=(
                f"global-state RNG call {name}() — use a seeded "
                "random.Random(seed) / np.random.default_rng(seed) instance "
                "threaded through the call graph"
            ),
        )
