"""NumPy hygiene rules: hidden copies, object dtype, float64 promotion.

The kernel layers (``graph/csr.py``, ``graph/phase2.py``, ``ml/``) are
memory-bandwidth-bound; an accidental extra copy of an index array is a
measurable regression, and an object-dtype array silently de-vectorizes a
whole pipeline stage.  These rules flag the allocation patterns that have
bitten (or nearly bitten) past PRs.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.lint.core import Finding, ModuleContext, Rule, iter_calls, register

#: ``np.<fn>`` calls that always return a fresh ndarray — wrapping one in
#: ``np.array(...)`` is a guaranteed second copy.
ARRAY_RETURNING_NP_FUNCTIONS = frozenset(
    {
        "arange",
        "argsort",
        "array",
        "asarray",
        "ascontiguousarray",
        "bincount",
        "column_stack",
        "concatenate",
        "cumprod",
        "cumsum",
        "diff",
        "empty",
        "empty_like",
        "frombuffer",
        "fromiter",
        "full",
        "full_like",
        "hstack",
        "lexsort",
        "linspace",
        "logspace",
        "ones",
        "ones_like",
        "repeat",
        "searchsorted",
        "sort",
        "stack",
        "take",
        "tile",
        "unique",
        "vstack",
        "zeros",
        "zeros_like",
    }
)

#: ndarray methods that return an ndarray; ``np.array(x.astype(...))`` and
#: friends double-copy.
ARRAY_RETURNING_METHODS = frozenset(
    {"astype", "copy", "flatten", "ravel", "reshape", "squeeze", "transpose"}
)


def _is_array_expression(ctx: ModuleContext, node: ast.expr) -> str | None:
    """If ``node`` is statically known to already be an ndarray, a short
    description of why; otherwise ``None``."""
    if isinstance(node, ast.Call):
        qualified = ctx.qualified_name(node.func)
        if qualified is not None:
            parts = qualified.split(".")
            if (
                len(parts) == 2
                and parts[0] == "numpy"
                and parts[1] in ARRAY_RETURNING_NP_FUNCTIONS
            ):
                return f"np.{parts[1]}(...) already returns an ndarray"
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in ARRAY_RETURNING_METHODS
        ):
            return f".{node.func.attr}(...) already returns an ndarray"
    return None


def _keyword(call: ast.Call, name: str) -> ast.keyword | None:
    for keyword in call.keywords:
        if keyword.arg == name:
            return keyword
    return None


@register
class HiddenCopyRule(Rule):
    rule_id = "NPY001"
    name = "no-hidden-array-copy"
    description = (
        "np.array() wrapped around an expression that is already an "
        "ndarray makes a hidden copy; use np.asarray or drop the wrapper"
    )
    rationale = (
        "The kernels are bandwidth-bound: one redundant copy of an index "
        "array is a measurable slowdown at scale."
    )

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        for call in iter_calls(ctx.tree):
            qualified = ctx.qualified_name(call.func)
            if qualified != "numpy.array" or not call.args:
                continue
            if _keyword(call, "copy") is not None:
                continue  # an explicit copy= documents the intent
            reason = _is_array_expression(ctx, call.args[0])
            if reason is not None:
                yield Finding(
                    rule_id=self.rule_id,
                    path=ctx.path,
                    line=call.lineno,
                    col=call.col_offset,
                    message=(
                        f"hidden copy: {reason}, so np.array() around it "
                        "copies again — use np.asarray(...) or drop the "
                        "wrapper"
                    ),
                )


@register
class AstypeCopyRule(Rule):
    rule_id = "NPY002"
    name = "explicit-astype-copy"
    description = (
        ".astype() defaults to copy=True; pass copy=False (or an explicit "
        "copy=True when aliasing would be wrong)"
    )
    rationale = (
        ".astype(dtype) copies even when the dtype already matches; "
        "copy=False makes the no-op case free and the copy case explicit."
    )

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        for call in iter_calls(ctx.tree):
            func = call.func
            if not (isinstance(func, ast.Attribute) and func.attr == "astype"):
                continue
            if _keyword(call, "copy") is not None:
                continue
            yield Finding(
                rule_id=self.rule_id,
                path=ctx.path,
                line=call.lineno,
                col=call.col_offset,
                message=(
                    ".astype() without copy= always copies — pass "
                    "copy=False unless an independent buffer is required "
                    "(then say copy=True)"
                ),
            )


@register
class ObjectDtypeRule(Rule):
    rule_id = "NPY003"
    name = "no-object-dtype"
    description = (
        "object-dtype array creation de-vectorizes kernels and hides "
        "per-element pickling costs"
    )
    rationale = (
        "An object-dtype array is a Python list in disguise: every kernel "
        "touching it falls off the fast path."
    )

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        for call in iter_calls(ctx.tree):
            keyword = _keyword(call, "dtype")
            if keyword is None:
                continue
            if self._is_object_dtype(ctx, keyword.value):
                yield Finding(
                    rule_id=self.rule_id,
                    path=ctx.path,
                    line=call.lineno,
                    col=call.col_offset,
                    message=(
                        "object-dtype array creation — store a typed array "
                        "(or a plain list) instead"
                    ),
                )

    def _is_object_dtype(self, ctx: ModuleContext, node: ast.expr) -> bool:
        if isinstance(node, ast.Name) and node.id == "object":
            return True
        if isinstance(node, ast.Constant) and node.value in ("object", "O"):
            return True
        qualified = ctx.qualified_name(node)
        return qualified in ("numpy.object_", "numpy.object")


@register
class Float32PromotionRule(Rule):
    rule_id = "NPY004"
    name = "no-float64-promotion-in-float32-kernels"
    description = (
        "inside a float32-annotated kernel, bare float literals and "
        "np.float64/dtype='float64' promote every downstream array"
    )
    rationale = (
        "One float64 scalar in a float32 kernel doubles the memory "
        "traffic of everything it touches."
    )

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            float32_params = self._float32_params(node)
            if not float32_params and not self._mentions_float32(node.returns):
                continue
            yield from self._check_kernel(ctx, node, float32_params)

    def _mentions_float32(self, annotation: ast.expr | None) -> bool:
        return annotation is not None and "float32" in ast.dump(annotation)

    def _float32_params(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Set[str]:
        params: Set[str] = set()
        for arg in (*node.args.args, *node.args.kwonlyargs, *node.args.posonlyargs):
            if self._mentions_float32(arg.annotation):
                params.add(arg.arg)
        return params

    def _check_kernel(
        self,
        ctx: ModuleContext,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        float32_params: Set[str],
    ) -> Iterator[Finding]:
        for node in ast.walk(func):
            if isinstance(node, ast.Attribute):
                qualified = ctx.qualified_name(node)
                if qualified in ("numpy.float64", "numpy.double"):
                    yield self._finding(
                        ctx, node, f"{qualified.replace('numpy', 'np')} used"
                    )
            elif isinstance(node, ast.keyword) and node.arg == "dtype":
                if (
                    isinstance(node.value, ast.Constant)
                    and node.value.value == "float64"
                ):
                    yield self._finding(ctx, node.value, "dtype='float64'")
            elif isinstance(node, ast.BinOp):
                for side, other in (
                    (node.left, node.right),
                    (node.right, node.left),
                ):
                    if (
                        isinstance(side, ast.Constant)
                        and isinstance(side.value, float)
                        and isinstance(other, ast.Name)
                        and other.id in float32_params
                    ):
                        yield self._finding(
                            ctx,
                            node,
                            f"float literal {side.value!r} in arithmetic "
                            f"with float32 parameter {other.id!r}",
                        )
                        break

    def _finding(self, ctx: ModuleContext, node: ast.AST, what: str) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=(
                f"float64 promotion in a float32-annotated kernel: {what} — "
                "use np.float32 scalars/dtypes to keep the kernel "
                "single-precision"
            ),
        )
