"""Multiprocessing-safety rules.

Worker processes receive their tasks and return their failures by pickle.
Two conventions keep that boundary safe in this repo, and each has already
cost a real bug:

* only module-level callables go to executors — lambdas and functions
  defined inside another function do not pickle (``MP001``);
* exception classes whose ``__init__`` signature differs from ``args``
  must define ``__reduce__`` (the ``_PicklableErrorMixin`` pattern in
  :mod:`repro.exceptions`), otherwise unpickling in the supervisor either
  raises ``TypeError`` or silently rebuilds a garbled message (``MP002``);
* every ``SharedMemory(...)`` acquisition must sit behind a lifecycle
  guard — a ``with`` lease or a ``try``/``finally`` (or handler) that
  closes the mapping, plus ``unlink`` for creators — because a leaked
  POSIX segment outlives the process and eats ``/dev/shm`` until reboot
  (``MP003``).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Set

from repro.lint.core import (
    Finding,
    ModuleContext,
    ProjectContext,
    Rule,
    iter_calls,
    register,
)

#: Executor/pool methods whose first argument is the callable shipped to a
#: worker process.
SUBMIT_METHODS = frozenset(
    {"submit", "map", "starmap", "imap", "imap_unordered", "apply", "apply_async"}
)

#: Builtin exception roots (reachable without any repo-defined ancestor).
BUILTIN_EXCEPTION_NAMES = frozenset(
    {
        "BaseException",
        "Exception",
        "ArithmeticError",
        "AssertionError",
        "AttributeError",
        "ConnectionError",
        "EOFError",
        "ImportError",
        "IndexError",
        "KeyError",
        "LookupError",
        "NotImplementedError",
        "OSError",
        "RuntimeError",
        "StopIteration",
        "TimeoutError",
        "TypeError",
        "ValueError",
    }
)


def _nested_function_names(tree: ast.Module) -> Set[str]:
    """Names of functions defined inside another function (unpicklable)."""
    nested: Set[str] = set()

    def walk(node: ast.AST, inside_function: bool) -> None:
        for child in ast.iter_child_nodes(node):
            is_function = isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef)
            )
            if is_function and inside_function:
                nested.add(child.name)
            walk(child, inside_function or is_function)

    walk(tree, False)
    return nested


@register
class ExecutorCallableRule(Rule):
    rule_id = "MP001"
    name = "picklable-executor-callables"
    description = (
        "lambdas and locally-defined functions passed to executor "
        "submit/map do not pickle; use a module-level function"
    )
    rationale = (
        "ProcessPoolExecutor pickles the callable; a closure fails at "
        "submit time on some platforms and never on others."
    )

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        nested = _nested_function_names(ctx.tree)
        for call in iter_calls(ctx.tree):
            func = call.func
            if not (
                isinstance(func, ast.Attribute) and func.attr in SUBMIT_METHODS
            ):
                continue
            if not call.args:
                continue
            candidate = call.args[0]
            if isinstance(candidate, ast.Lambda):
                yield self._finding(
                    ctx, call, f"a lambda passed to .{func.attr}()"
                )
            elif isinstance(candidate, ast.Name) and candidate.id in nested:
                yield self._finding(
                    ctx,
                    call,
                    f"locally-defined function {candidate.id!r} passed to "
                    f".{func.attr}()",
                )

    def _finding(self, ctx: ModuleContext, call: ast.Call, what: str) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            path=ctx.path,
            line=call.lineno,
            col=call.col_offset,
            message=(
                f"{what} cannot be pickled into a worker process — move the "
                "callable to module scope"
            ),
        )


#: Call-name tokens that count as releasing a mapping (``.close()``,
#: ``lease.close()``, ``_release_segments(...)`` …).
_CLOSE_TOKENS = ("close", "release", "unlink")
#: Tokens that additionally count as destroying the segment itself, which
#: creators (``create=True``) must guarantee.
_UNLINK_TOKENS = ("unlink", "release")


def _called_names(stmts: List[ast.stmt]) -> Iterator[str]:
    """Names of every function/method invoked anywhere under ``stmts``."""
    for stmt in stmts:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute):
                    yield func.attr
                elif isinstance(func, ast.Name):
                    yield func.id


def _try_cleans_up(node: ast.Try, need_unlink: bool) -> bool:
    """True when the try's finally/handlers release (and unlink) segments."""
    tokens = _UNLINK_TOKENS if need_unlink else _CLOSE_TOKENS
    cleanup: List[ast.stmt] = list(node.finalbody)
    for handler in node.handlers:
        cleanup.extend(handler.body)
    return any(
        any(token in name.lower() for token in tokens)
        for name in _called_names(cleanup)
    )


@register
class SharedMemoryLifecycleRule(Rule):
    rule_id = "MP003"
    name = "shared-memory-lifecycle"
    description = (
        "SharedMemory acquisitions must be guarded by a with-lease or a "
        "try/finally that closes the mapping (and unlinks it for creators)"
    )
    rationale = (
        "a leaked POSIX shared-memory segment outlives the process and "
        "holds /dev/shm space until reboot; creators that close without "
        "unlink leak the segment even on the happy path"
    )

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        parents: Dict[ast.AST, ast.AST] = {}
        for node in ast.walk(ctx.tree):
            for child in ast.iter_child_nodes(node):
                parents[child] = node
        for call in iter_calls(ctx.tree):
            func = call.func
            name = (
                func.attr
                if isinstance(func, ast.Attribute)
                else func.id
                if isinstance(func, ast.Name)
                else None
            )
            if name != "SharedMemory":
                continue
            creates = any(
                keyword.arg == "create"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
                for keyword in call.keywords
            )
            if self._guarded(call, parents, creates):
                continue
            needed = "close() and unlink()" if creates else "close()"
            yield Finding(
                rule_id=self.rule_id,
                path=ctx.path,
                line=call.lineno,
                col=call.col_offset,
                message=(
                    "SharedMemory acquisition without a lifecycle guard — "
                    "wrap it in a with-lease or pair it with a try/finally "
                    f"calling {needed}"
                ),
            )

    def _guarded(
        self,
        call: ast.Call,
        parents: Dict[ast.AST, ast.AST],
        creates: bool,
    ) -> bool:
        """Walk outward: a with block, a cleaning try, or one in the same
        function body (the acquire-then-try/finally idiom) all count."""
        node: ast.AST = call
        scope: ast.AST | None = None
        while node in parents:
            node = parents[node]
            if isinstance(node, (ast.With, ast.AsyncWith)):
                return True
            if isinstance(node, ast.Try) and _try_cleans_up(node, creates):
                return True
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and scope is None
            ):
                scope = node
        if scope is None:
            return False
        return any(
            isinstance(inner, ast.Try) and _try_cleans_up(inner, creates)
            for inner in ast.walk(scope)
        )


@dataclass
class _ClassInfo:
    name: str
    path: str
    line: int
    bases: List[str] = field(default_factory=list)
    has_init: bool = False
    has_reduce: bool = False


def _collect_classes(project: ProjectContext) -> Dict[str, _ClassInfo]:
    table: Dict[str, _ClassInfo] = {}
    for ctx in project.modules:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            bases: List[str] = []
            for base in node.bases:
                if isinstance(base, ast.Name):
                    bases.append(base.id)
                elif isinstance(base, ast.Attribute):
                    bases.append(base.attr)
            methods = {
                item.name
                for item in node.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            table[node.name] = _ClassInfo(
                name=node.name,
                path=ctx.path,
                line=node.lineno,
                bases=bases,
                has_init="__init__" in methods,
                has_reduce=bool(methods & {"__reduce__", "__reduce_ex__"}),
            )
    return table


def _is_exception_like(info: _ClassInfo, table: Dict[str, _ClassInfo]) -> bool:
    seen: Set[str] = set()
    stack = list(info.bases)
    while stack:
        base = stack.pop()
        if base in seen:
            continue
        seen.add(base)
        if base in BUILTIN_EXCEPTION_NAMES or base.endswith(
            ("Error", "Exception", "Warning")
        ):
            if base not in table:
                return True
        if base in table:
            if _ancestry_reaches_builtin(table[base], table, seen, stack):
                return True
    return False


def _ancestry_reaches_builtin(
    info: _ClassInfo,
    table: Dict[str, _ClassInfo],
    seen: Set[str],
    stack: List[str],
) -> bool:
    for base in info.bases:
        if base in BUILTIN_EXCEPTION_NAMES and base not in table:
            return True
        if base not in seen:
            stack.append(base)
    return False


def _repo_ancestry(
    info: _ClassInfo, table: Dict[str, _ClassInfo]
) -> Iterator[_ClassInfo]:
    """``info`` plus every repo-defined ancestor/mixin (depth-first)."""
    seen: Set[str] = set()
    stack = [info.name]
    while stack:
        name = stack.pop()
        if name in seen or name not in table:
            continue
        seen.add(name)
        current = table[name]
        yield current
        stack.extend(current.bases)


@register
class ExceptionReduceRule(Rule):
    rule_id = "MP002"
    name = "picklable-exceptions"
    description = (
        "exception classes with a custom __init__ must define __reduce__ "
        "(or inherit _PicklableErrorMixin) to survive worker round-trips"
    )
    rationale = (
        "BaseException.__reduce__ replays __init__(*args) with the "
        "formatted message, so any custom signature unpickles wrong."
    )
    scope = "project"

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        table = _collect_classes(project)
        for info in table.values():
            if not _is_exception_like(info, table):
                continue
            ancestry = list(_repo_ancestry(info, table))
            custom_init = any(item.has_init for item in ancestry)
            has_reduce = any(item.has_reduce for item in ancestry)
            if custom_init and not has_reduce:
                yield Finding(
                    rule_id=self.rule_id,
                    path=info.path,
                    line=info.line,
                    col=0,
                    message=(
                        f"exception class {info.name} has a custom __init__ "
                        "but no __reduce__ in its hierarchy — it will not "
                        "survive a pickle round-trip from a worker process "
                        "(add _PicklableErrorMixin or define __reduce__)"
                    ),
                )


#: The three methods the repo-wide lifecycle protocol
#: (:class:`repro.lifecycle.Closeable`) requires of every lease owner.
_LIFECYCLE_METHODS = ("close", "__enter__", "__exit__")
_LEASE_CLASS = "ShmLease"


@dataclass
class _OwnerInfo:
    """One class's lifecycle-relevant surface for the MP004 ownership walk."""

    name: str
    path: str
    line: int
    bases: List[str] = field(default_factory=list)
    methods: Set[str] = field(default_factory=set)
    owned_classes: Set[str] = field(default_factory=set)


def _identifier_names(node: ast.AST) -> Iterator[str]:
    """Every identifier referenced under ``node``, including identifiers
    inside string annotations (``self._lease: "ShmLease | None"``)."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            yield sub.id
        elif isinstance(sub, ast.Attribute):
            yield sub.attr
        elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            yield from re.findall(r"[A-Za-z_][A-Za-z0-9_]*", sub.value)


def _is_self_attribute(target: ast.expr) -> bool:
    return (
        isinstance(target, ast.Attribute)
        and isinstance(target.value, ast.Name)
        and target.value.id == "self"
    )


def _collect_owner_info(project: ProjectContext) -> Dict[str, _OwnerInfo]:
    table: Dict[str, _OwnerInfo] = {}
    for ctx in project.modules:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            info = _OwnerInfo(name=node.name, path=ctx.path, line=node.lineno)
            for base in node.bases:
                if isinstance(base, ast.Name):
                    info.bases.append(base.id)
                elif isinstance(base, ast.Attribute):
                    info.bases.append(base.attr)
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    info.methods.add(item.name)
                elif isinstance(item, ast.AnnAssign):
                    # dataclass-style field: the annotation names what is held
                    info.owned_classes.update(_identifier_names(item.annotation))
            for sub in ast.walk(node):
                if isinstance(sub, ast.AnnAssign) and _is_self_attribute(sub.target):
                    info.owned_classes.update(_identifier_names(sub.annotation))
                elif isinstance(sub, ast.Assign):
                    if not any(_is_self_attribute(t) for t in sub.targets):
                        continue
                    value = sub.value
                    if isinstance(value, ast.Call):
                        func = value.func
                        if isinstance(func, ast.Name):
                            info.owned_classes.add(func.id)
                        elif isinstance(func, ast.Attribute):
                            info.owned_classes.add(func.attr)
            table[node.name] = info
    return table


@register
class LeaseOwnerLifecycleRule(Rule):
    rule_id = "MP004"
    name = "lease-owner-closeable"
    description = (
        "classes owning an ShmLease — directly, or through an attribute "
        "holding a lease-owning resource — must implement the Closeable "
        "lifecycle protocol (close/__enter__/__exit__)"
    )
    rationale = (
        "a lease owner without a close()/context-manager surface has no "
        "deterministic release path, so its /dev/shm segments and worker "
        "pools live until interpreter teardown; one shared protocol "
        "(repro.lifecycle.Closeable) keeps every owner releasable"
    )
    scope = "project"

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        table = _collect_owner_info(project)
        owners: Set[str] = {
            info.name
            for info in table.values()
            if _LEASE_CLASS in info.owned_classes and info.name != _LEASE_CLASS
        }
        # Transitive closure: holding an owner makes you an owner.
        changed = True
        while changed:
            changed = False
            for info in table.values():
                if info.name in owners or info.name == _LEASE_CLASS:
                    continue
                if info.owned_classes & owners:
                    owners.add(info.name)
                    changed = True
        for name in sorted(owners):
            info = table[name]
            missing = [
                method
                for method in _LIFECYCLE_METHODS
                if not self._defines(info, method, table)
            ]
            if missing:
                yield Finding(
                    rule_id=self.rule_id,
                    path=info.path,
                    line=info.line,
                    col=0,
                    message=(
                        f"class {name} owns an ShmLease-bearing resource but "
                        f"does not implement {', '.join(missing)} — implement "
                        "the repro.lifecycle.Closeable protocol (idempotent "
                        "close() + context manager)"
                    ),
                )

    def _defines(
        self, info: _OwnerInfo, method: str, table: Dict[str, _OwnerInfo]
    ) -> bool:
        seen: Set[str] = set()
        stack = [info.name]
        while stack:
            name = stack.pop()
            if name in seen or name not in table:
                continue
            seen.add(name)
            current = table[name]
            if method in current.methods:
                return True
            stack.extend(current.bases)
        return False
