"""Parity-contract coverage: every accepted backend literal has a test.

Each ``"…"|"auto"`` knob in this repo carries a bit-exact parity contract:
the backends behind ``backend=``, ``ml_backend=`` and ``nn_backend=`` must
produce identical outputs, which only stays true while each accepted literal
is actually exercised by the test suite.  This project rule cross-references
two ASTs:

1. **Declarations** — membership-validation sites in the library of the form
   ``if self.<knob> not in {"auto", "x", "y"}: raise ...``.  Every string in
   the set is a literal the public entry point accepts.
2. **Coverage** — the test tree: keyword arguments (``backend="csr"``),
   attribute/name assignments (``config.backend = "csr"``) and
   ``pytest.mark.parametrize("backend", [...])`` value lists.

A declared literal with no covering test fails the lint, naming the value
and the declaration site — so deleting the last ``backend="hist"`` parity
test turns into a CI failure instead of silent contract rot.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Set, Tuple

from repro.lint.core import (
    Finding,
    ModuleContext,
    ProjectContext,
    Rule,
    iter_calls,
    register,
)

DEFAULT_KNOBS: Tuple[str, ...] = ("backend", "ml_backend", "nn_backend")


@dataclass(frozen=True)
class KnobLiteral:
    """One accepted value of one backend knob, at its declaration site."""

    knob: str
    value: str
    path: str
    line: int


def _knob_name(node: ast.expr, knobs: Tuple[str, ...]) -> str | None:
    if isinstance(node, ast.Attribute) and node.attr in knobs:
        return node.attr
    if isinstance(node, ast.Name) and node.id in knobs:
        return node.id
    return None


def _literal_set(node: ast.expr) -> List[str] | None:
    if not isinstance(node, (ast.Set, ast.List, ast.Tuple)):
        return None
    values: List[str] = []
    for element in node.elts:
        if not (
            isinstance(element, ast.Constant) and isinstance(element.value, str)
        ):
            return None
        values.append(element.value)
    return values


def _contains_raise(body: List[ast.stmt]) -> bool:
    return any(isinstance(node, ast.Raise) for stmt in body for node in ast.walk(stmt))


def collect_declarations(
    modules: List[ModuleContext], knobs: Tuple[str, ...]
) -> List[KnobLiteral]:
    """Accepted backend literals from validation sites in the library."""
    declared: Dict[Tuple[str, str], KnobLiteral] = {}
    for ctx in modules:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.If):
                continue
            test = node.test
            if not (
                isinstance(test, ast.Compare)
                and len(test.ops) == 1
                and isinstance(test.ops[0], ast.NotIn)
            ):
                continue
            knob = _knob_name(test.left, knobs)
            if knob is None:
                continue
            values = _literal_set(test.comparators[0])
            if values is None or not _contains_raise(node.body):
                continue
            for value in values:
                declared.setdefault(
                    (knob, value),
                    KnobLiteral(knob, value, ctx.path, node.lineno),
                )
    return sorted(declared.values(), key=lambda d: (d.knob, d.value))


def collect_coverage(
    test_modules: List[ModuleContext], knobs: Tuple[str, ...]
) -> Tuple[Dict[str, Set[str]], Set[str]]:
    """Backend literals the test tree exercises.

    Returns ``(by_knob, generic)``: ``by_knob[k]`` holds values passed with
    the exact keyword ``k=``; ``generic`` holds values passed under any knob
    spelling (layer-local constructors all call their own knob ``backend``)
    or via a ``parametrize`` whose argnames mention ``backend``.
    """
    by_knob: Dict[str, Set[str]] = {knob: set() for knob in knobs}
    generic: Set[str] = set()
    for ctx in test_modules:
        for call in iter_calls(ctx.tree):
            for keyword in call.keywords:
                if keyword.arg in knobs and isinstance(keyword.value, ast.Constant):
                    value = keyword.value.value
                    if isinstance(value, str):
                        by_knob[keyword.arg].add(value)
                        generic.add(value)
            func = call.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "parametrize"
                and len(call.args) >= 2
                and isinstance(call.args[0], ast.Constant)
                and isinstance(call.args[0].value, str)
                and "backend" in call.args[0].value
            ):
                values = _literal_set(call.args[1])
                if values:
                    generic.update(values)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Constant
            ):
                value = node.value.value
                if not isinstance(value, str):
                    continue
                for target in node.targets:
                    knob = _knob_name(target, knobs)
                    if knob is not None:
                        by_knob[knob].add(value)
                        generic.add(value)
    return by_knob, generic


@register
class ParityCoverageRule(Rule):
    rule_id = "PAR001"
    name = "backend-parity-coverage"
    description = (
        "every backend/ml_backend/nn_backend literal accepted by a public "
        "entry point must be exercised by at least one test"
    )
    rationale = (
        "Bit-exact parity is only as real as the tests that pin it; an "
        "uncovered backend literal is an unenforced contract."
    )
    scope = "project"

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        knobs = getattr(project, "backend_knobs", DEFAULT_KNOBS)
        declared = collect_declarations(project.modules, knobs)
        by_knob, generic = collect_coverage(project.test_modules, knobs)
        for literal in declared:
            if (
                literal.value in by_knob.get(literal.knob, set())
                or literal.value in generic
            ):
                continue
            yield Finding(
                rule_id=self.rule_id,
                path=literal.path,
                line=literal.line,
                col=0,
                message=(
                    f"backend literal {literal.value!r} (knob "
                    f"{literal.knob!r}, declared here) is not exercised by "
                    "any test — add a parity test passing "
                    f"{literal.knob}={literal.value!r}"
                ),
            )
