"""Discovery, parsing and rule execution for :mod:`repro.lint`.

``run_lint`` walks the configured roots once, parses every module once, and
hands the shared ASTs to each registered rule (module rules per file inside
their scope, project rules once over the whole tree).  Findings on
suppressed lines (see :mod:`repro.lint.suppress`) are dropped before
reporting.
"""

from __future__ import annotations

import argparse
import ast
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence

from repro.lint.config import LintConfig, default_config
from repro.lint.core import (
    Finding,
    ModuleContext,
    ProjectContext,
    all_rules,
    build_alias_map,
)
from repro.lint.reporters import render_json, render_text
from repro.lint.suppress import SuppressionIndex, parse_suppressions


def find_repo_root(start: Path | None = None) -> Path:
    """Nearest ancestor containing ``pyproject.toml`` (fallback: cwd)."""
    here = (start or Path.cwd()).resolve()
    for candidate in (here, *here.parents):
        if (candidate / "pyproject.toml").exists():
            return candidate
    return here


@dataclass
class LintResult:
    """Outcome of one engine run."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    rules_run: int = 0
    parse_errors: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings and not self.parse_errors


def _discover(root: Path, rel_roots: Sequence[str]) -> List[Path]:
    files: List[Path] = []
    for rel in rel_roots:
        base = root / rel
        if base.is_file() and base.suffix == ".py":
            files.append(base)
        elif base.is_dir():
            files.extend(sorted(base.rglob("*.py")))
    # De-duplicate while keeping deterministic order.
    seen = set()
    unique = []
    for path in files:
        if path not in seen:
            seen.add(path)
            unique.append(path)
    return unique


def _load_module(
    root: Path, path: Path, result: LintResult
) -> tuple[ModuleContext, SuppressionIndex] | None:
    rel = path.relative_to(root).as_posix()
    try:
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=rel)
    except (OSError, SyntaxError) as exc:
        result.parse_errors.append(f"{rel}: {exc}")
        return None
    ctx = ModuleContext(
        path=rel, tree=tree, source=source, aliases=build_alias_map(tree)
    )
    return ctx, parse_suppressions(source)


def run_lint(
    root: Path | str | None = None,
    config: LintConfig | None = None,
    rule_ids: Sequence[str] | None = None,
) -> LintResult:
    """Lint the tree under ``root`` (default: the enclosing repo).

    ``rule_ids`` restricts the run to a subset of rules (used by the
    per-rule fixture tests).
    """
    root = Path(root) if root is not None else find_repo_root(Path(__file__))
    config = config or default_config()
    result = LintResult()

    rules = [
        rule
        for rule in all_rules()
        if (rule_ids is None or rule.rule_id in rule_ids)
        and rule.rule_id not in config.disabled_rules
    ]
    result.rules_run = len(rules)

    modules: List[ModuleContext] = []
    suppressions: Dict[str, SuppressionIndex] = {}
    for path in _discover(root, config.src_roots):
        loaded = _load_module(root, path, result)
        if loaded is None:
            continue
        ctx, index = loaded
        modules.append(ctx)
        suppressions[ctx.path] = index
    test_modules: List[ModuleContext] = []
    for path in _discover(root, config.test_roots):
        loaded = _load_module(root, path, result)
        if loaded is None:
            continue
        ctx, index = loaded
        test_modules.append(ctx)
        suppressions.setdefault(ctx.path, index)
    result.files_checked = len(modules) + len(test_modules)

    raw: List[Finding] = []
    project = ProjectContext(
        root=str(root),
        modules=modules,
        test_modules=test_modules,
        backend_knobs=config.backend_knobs,
    )
    for rule in rules:
        if rule.scope == "project":
            raw.extend(
                finding
                for finding in rule.check_project(project)
                if config.applies_to(rule.rule_id, finding.path)
            )
        else:
            for ctx in modules:
                if config.applies_to(rule.rule_id, ctx.path):
                    raw.extend(rule.check_module(ctx))

    for finding in sorted(raw, key=Finding.sort_key):
        index = suppressions.get(finding.path)
        if index is not None and index.is_suppressed(finding.rule_id, finding.line):
            continue
        result.findings.append(finding)
    return result


def _list_rules_text() -> str:
    lines = ["Rule catalog:"]
    for rule in all_rules():
        lines.append(f"  {rule.rule_id}  {rule.name}")
        lines.append(f"      {rule.description}")
    return "\n".join(lines)


def build_arg_parser(prog: str = "repro.lint") -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog, description="LoCEC invariant lint engine"
    )
    parser.add_argument(
        "--root",
        default=None,
        help="repository root to lint (default: auto-detected)",
    )
    parser.add_argument(
        "--format",
        dest="output_format",
        default="text",
        choices=["text", "json"],
        help="report format (default: text)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Run the engine as a command; returns the process exit code
    (0 = clean, 1 = findings or parse errors, 2 = usage error)."""
    args = build_arg_parser().parse_args(argv)
    if args.list_rules:
        print(_list_rules_text())
        return 0
    rule_ids = (
        [part.strip() for part in args.rules.split(",") if part.strip()]
        if args.rules
        else None
    )
    result = run_lint(root=args.root, rule_ids=rule_ids)
    if args.output_format == "json":
        print(render_json(result))
    else:
        print(render_text(result))
    return 0 if result.ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
