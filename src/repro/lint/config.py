"""Per-module scope configuration for the lint engine.

Each rule declares *where it applies* via path prefixes relative to the lint
root (``/`` separators; a prefix may name a file).  The default
configuration encodes this repo's invariant boundaries:

* determinism rules cover the whole library plus ``scripts/`` but not
  ``benchmarks/`` — benchmark harnesses measure wall-clock time by design,
  while library and report-generating code must route through
  :mod:`repro.clock`;
* NumPy-hygiene and multiprocessing-safety rules cover library, scripts and
  benchmarks alike;
* the parity-coverage rule is a project rule: it reads the library for
  accepted backend literals and the test tree for coverage.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Tuple

_LIBRARY = ("src/repro",)
_LIBRARY_AND_SCRIPTS = ("src/repro", "scripts")
_EVERYTHING = ("src/repro", "scripts", "benchmarks")
# The multiprocessing supervisors ship callables and shared-memory leases
# across process boundaries; the MP rules MUST stay in scope for them even
# if the broad src/repro prefix is ever narrowed.  (All files are already
# inside _EVERYTHING; listing them pins the invariant.)  The last two own
# leases *indirectly* — FeatureMatrixBuilder through its sharded runner and
# ServingSession through the pipeline it serves — and are what the MP004
# lifecycle rule exists to keep closeable.
_MP_CRITICAL = _EVERYTHING + (
    "src/repro/runtime/executor.py",
    "src/repro/runtime/phase2_exec.py",
    "src/repro/core/aggregation.py",
    "src/repro/serve.py",
)

DEFAULT_RULE_SCOPES: Dict[str, Tuple[str, ...]] = {
    "DET001": _LIBRARY_AND_SCRIPTS,
    "DET002": _LIBRARY_AND_SCRIPTS,
    "PAR001": _LIBRARY,  # project rule: src side of the cross-reference
    "MP001": _MP_CRITICAL,
    "MP002": _LIBRARY,
    "MP003": _MP_CRITICAL,
    "MP004": _MP_CRITICAL,
    "NPY001": _EVERYTHING,
    "NPY002": _EVERYTHING,
    "NPY003": _EVERYTHING,
    "NPY004": _EVERYTHING,
}


@dataclass(frozen=True)
class LintConfig:
    """What to lint and which rules apply where."""

    src_roots: Tuple[str, ...] = _EVERYTHING
    """Directories (relative to the lint root) scanned for source modules."""
    test_roots: Tuple[str, ...] = ("tests",)
    """Directories whose modules count as tests for cross-reference rules."""
    rule_scopes: Dict[str, Tuple[str, ...]] = field(
        default_factory=lambda: dict(DEFAULT_RULE_SCOPES)
    )
    """Rule id → path prefixes it applies to.  A rule missing from the map
    applies to every ``src_roots`` file."""
    disabled_rules: Tuple[str, ...] = ()
    backend_knobs: Tuple[str, ...] = ("backend", "ml_backend", "nn_backend")
    """Config attribute names the parity-coverage rule treats as backend
    knobs."""

    def applies_to(self, rule_id: str, rel_path: str) -> bool:
        """True when ``rule_id`` is in scope for ``rel_path``."""
        if rule_id in self.disabled_rules:
            return False
        scopes = self.rule_scopes.get(rule_id)
        if scopes is None:
            return True
        return any(
            rel_path == scope or rel_path.startswith(scope.rstrip("/") + "/")
            for scope in scopes
        )

    def with_scope(self, rule_id: str, *prefixes: str) -> "LintConfig":
        """A copy of this config with ``rule_id`` rescoped to ``prefixes``."""
        scopes = dict(self.rule_scopes)
        scopes[rule_id] = tuple(prefixes)
        return replace(self, rule_scopes=scopes)


def default_config() -> LintConfig:
    """The repo's checked-in lint configuration."""
    return LintConfig()
