"""Repo-native static analysis: the invariant lint engine.

The LoCEC reproduction rests on invariants that ordinary linters cannot see:
bit-exact backend parity behind every ``"…"|"auto"`` knob, deterministic
seeded execution (no stray wall-clock or global-RNG reads), pickle-safe
exceptions for the sharded runtime, and hidden-copy-free NumPy hot paths.
This package turns those conventions into machine-checked, CI-blocking
rules over the stdlib ``ast`` — no third-party dependencies.

Usage::

    python -m repro.lint                # lint the repo with the default config
    locec-repro lint [--format json]    # same, via the CLI
    locec-repro lint --list-rules       # print the rule catalog

Suppressions: append ``# repro-lint: disable=RULE1,RULE2`` to the offending
line, or put ``# repro-lint: disable-file=RULE`` on its own line anywhere in
a file to waive a rule for the whole file.  Every suppression should carry a
justification in the surrounding comment.

See ``docs/lint_rules.md`` for the rule catalog and the rule-authoring guide.
"""

from __future__ import annotations

from repro.lint.core import Finding, Rule, all_rules, get_rule, register
from repro.lint.config import LintConfig, default_config
from repro.lint.engine import LintResult, run_lint
from repro.lint.reporters import render_json, render_text

__all__ = [
    "Finding",
    "Rule",
    "LintConfig",
    "LintResult",
    "all_rules",
    "get_rule",
    "register",
    "default_config",
    "run_lint",
    "render_json",
    "render_text",
    "main",
]


def main(argv: list[str] | None = None) -> int:
    """Console entry point (``python -m repro.lint``); returns exit code."""
    from repro.lint.engine import main as _main

    return _main(argv)
