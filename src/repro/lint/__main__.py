"""``python -m repro.lint`` — run the invariant lint engine."""

from __future__ import annotations

import sys

from repro.lint.engine import main

if __name__ == "__main__":
    sys.exit(main())
