"""Injectable time sources: the one sanctioned home for wall-clock reads.

Every other module in the library is forbidden (and lint-enforced, see
:mod:`repro.lint`) from calling ``time.time()`` / ``time.perf_counter()`` /
``time.sleep()`` directly: wall-clock reads scattered through pipeline code
silently break deterministic replay, the zero-sleep fast test tier and the
fault-injection harness.  Code that needs time takes a :class:`Clock` and
callers inject :class:`SystemClock` (production) or :class:`FakeClock`
(tests — virtual time, no real sleeps).

This module is deliberately dependency-free (stdlib only, no intra-repo
imports) so any layer — ``core``, ``runtime``, scripts — can use it without
import cycles.  The classes are re-exported from
:mod:`repro.runtime.resilience`, their historical home, so existing imports
keep working.
"""

from __future__ import annotations

import time


class Clock:
    """Minimal injectable time source (monotonic seconds + sleep)."""

    def monotonic(self) -> float:
        raise NotImplementedError

    def perf_counter(self) -> float:
        """Highest-resolution timer available; defaults to :meth:`monotonic`.

        Benchmark/timing code should prefer this over :meth:`monotonic`;
        fake clocks need not override it.
        """
        return self.monotonic()

    def sleep(self, seconds: float) -> None:
        raise NotImplementedError


class SystemClock(Clock):
    """Wall-clock implementation used outside tests.

    The three calls below are the sanctioned wall-clock reads the
    determinism lint rules exist to funnel everything through.
    """

    def monotonic(self) -> float:
        return time.monotonic()  # repro-lint: disable=DET001

    def perf_counter(self) -> float:
        return time.perf_counter()  # repro-lint: disable=DET001

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)  # repro-lint: disable=DET001


class FakeClock(Clock):
    """Virtual clock: ``sleep`` advances time instantly and records itself.

    Lets the fast test tier drive every retry/backoff/timeout path without a
    single real sleep; ``sleeps`` is the audit trail of requested delays.
    """

    def __init__(self, start: float = 0.0) -> None:
        self.now = float(start)
        self.sleeps: list[float] = []

    def monotonic(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        seconds = max(0.0, float(seconds))
        self.sleeps.append(seconds)
        self.now += seconds

    def advance(self, seconds: float) -> None:
        self.now += float(seconds)
